"""Child-process entry point: run one analysis job, publish artifacts.

The server launches :func:`job_process_main` in its own
``multiprocessing.Process`` per job — a crash (OOM, segfault, operator
``kill``) takes down one job, never the listener.  The worker:

1. arms clean SIGTERM unwinding (cancellation = SIGTERM from the
   server, surfacing here as ``SystemExit`` so ``finally`` blocks run);
2. reads the immutable ``spec.json`` from its job directory;
3. builds the workload from :mod:`repro.apps.registry` and runs a
   normal :class:`~repro.tools.session.AnalysisSession` against the
   service's shared :class:`~repro.tools.cache.AnalysisCache`
   (``shared=True``: writes serialize on the writer lock, reads stay
   lock-free and digest-verified);
4. publishes each requested artifact content-addressed into the cache's
   blob store — identical bytes land at one address, so a job re-run
   after a server crash deduplicates instead of duplicating;
5. writes ``result.json`` atomically with totals, artifact digests, and
   the worker's metric snapshot for the parent to merge.

Progress is visible throughout via atomic rewrites of ``status.json``
(``phase`` walks build → analyze → predict → artifacts; ``trace_path``
appears once a spilled recording resolves, for ``repro trace gc``
live-reference protection).  A daemon heartbeat thread
(:class:`StatusReporter`) re-stamps the same file every ``heartbeat_s``
with a fresh timestamp and the worker's current RSS — the liveness and
memory signal the scheduler-side supervisor
(:mod:`repro.service.supervise`) enforces ceilings against.  The worker
also records its (pid, start-ticks) identity in ``worker.json`` so a
replacement server can reap it if this server dies without cleanup.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

logger = logging.getLogger("repro.service.worker")

#: worker exit codes the server maps back to job states
EXIT_OK = 0
EXIT_FAILED = 1


def _write_status(job_dir: str, **fields: Any) -> None:
    from repro.tools.atomicio import atomic_write_text
    fields.setdefault("ts", time.time())
    atomic_write_text(os.path.join(job_dir, "status.json"),
                      json.dumps(fields, sort_keys=True) + "\n")


class StatusReporter:
    """Heartbeating owner of a job's ``status.json``.

    Phase transitions call :meth:`update` (immediate atomic rewrite); a
    daemon thread re-writes the same fields every ``heartbeat_s`` with a
    fresh ``ts`` and the worker's current RSS, so a worker stalled
    inside one phase still proves liveness — and a leaking one reports
    the growth that gets it killed.  ``heartbeat_s <= 0`` disables the
    thread; updates still write through.
    """

    def __init__(self, job_dir: str, heartbeat_s: float = 0.0) -> None:
        self.job_dir = job_dir
        self.heartbeat_s = heartbeat_s
        self._fields: Dict[str, Any] = {"pid": os.getpid()}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def update(self, **fields: Any) -> None:
        with self._lock:
            self._fields.update(fields)
            snapshot = dict(self._fields)
        self._write(snapshot)

    def _write(self, snapshot: Dict[str, Any]) -> None:
        from repro.service.supervise import rss_mb
        snapshot["rss_mb"] = round(rss_mb(), 1)
        snapshot.pop("ts", None)  # _write_status stamps fresh
        try:
            _write_status(self.job_dir, **snapshot)
        except OSError:  # pragma: no cover - job dir vanished under us
            pass

    def start(self) -> None:
        if self.heartbeat_s <= 0 or self._thread is not None:
            return
        self._thread = threading.Thread(target=self._beat,
                                        name="status-heartbeat",
                                        daemon=True)
        self._thread.start()

    def _beat(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            with self._lock:
                snapshot = dict(self._fields)
            self._write(snapshot)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


def _artifact_bytes(session, kind: str) -> bytes:
    """Render one artifact kind to its canonical bytes."""
    if kind == "patterns":
        return pickle.dumps(session.analyzer.dump_state(),
                            protocol=pickle.HIGHEST_PROTOCOL)
    if kind == "manifest":
        return (session.manifest.to_json() + "\n").encode()
    if kind == "report":
        from repro.tools.htmlreport import render_html
        return render_html(session).encode()
    if kind == "xml":
        return session.export_xml(None).encode()
    raise ValueError(f"unknown artifact kind {kind!r}")


def run_job(job_dir: str, cache_dir: str,
            trace_dir: Optional[str] = None,
            heartbeat_s: float = 0.0) -> Dict[str, Any]:
    """Execute the job described by ``<job_dir>/spec.json``.

    Returns the result dict (also written to ``result.json``).  Raises
    nothing job-related — failures land in the result with
    ``status: "failed"``; only truly unexpected states (unreadable spec)
    raise out to :func:`job_process_main`.
    """
    from repro.apps.registry import build_workload, workload_params
    from repro.obs import metrics as _obs
    from repro.service.jobs import ARTIFACT_KINDS, JobSpec
    from repro.service.supervise import write_worker_identity
    from repro.testing import faults as _faults
    from repro.tools.atomicio import atomic_write_text
    from repro.tools.cache import AnalysisCache
    from repro.tools.session import AnalysisSession

    with open(os.path.join(job_dir, "spec.json"), encoding="utf-8") as f:
        spec = JobSpec.from_dict(json.load(f))

    t0 = time.time()
    write_worker_identity(job_dir)
    reporter = StatusReporter(job_dir, heartbeat_s=heartbeat_s)
    reporter.update(phase="build")
    reporter.start()
    # chaos hook: lets the fault harness stall/leak/kill this worker at
    # a deterministic point (after identity + first heartbeat exist)
    _faults.fire("service.worker", workload=spec.workload,
                 job=os.path.basename(job_dir))
    result: Dict[str, Any] = {"status": "failed", "totals": {},
                              "artifacts": [], "error": ""}
    try:
        params = dict(workload_params(spec.workload))
        params.update(spec.params)
        program = build_workload(spec.workload, **params)
        cache = AnalysisCache(cache_dir, shared=True)
        session = AnalysisSession(
            program,
            miss_model=spec.miss_model,
            engine=spec.engine,
            cache=cache,
            shards=spec.shards,
            trace_store=(trace_dir if spec.use_trace_store else None),
            spill_mb=spec.spill_mb,
            closed_form=spec.closed_form,
            # the derivation cache entry lives in the shared analysis
            # cache, so restarted services and sibling jobs reuse it
            closed_form_spec=({"workload": spec.workload,
                               "params": params}
                              if spec.closed_form else None),
        )
        reporter.update(phase="analyze")
        session.run()
        if session.trace_path:
            reporter.update(phase="predict",
                            trace_path=session.trace_path)
        else:
            reporter.update(phase="predict")
        totals = session.totals()

        reporter.update(phase="artifacts",
                        trace_path=session.trace_path)
        artifacts: List[Dict[str, Any]] = []
        deduped = 0
        for kind in spec.artifacts:
            data = _artifact_bytes(session, kind)
            digest = hashlib.sha256(data).hexdigest()
            if cache.has_blob(digest):
                deduped += 1
                _obs.counter("svc.artifacts_deduped").inc()
            else:
                cache.put_blob(digest, data)
            _obs.counter("svc.artifacts_published").inc()
            artifacts.append({"name": kind,
                              "file": ARTIFACT_KINDS[kind],
                              "digest": digest,
                              "bytes": len(data)})
        result = {
            "status": "done",
            "totals": totals,
            "artifacts": artifacts,
            "artifacts_deduped": deduped,
            "from_cache": session.from_cache,
            "fallback": session.fallback,
            "trace_path": session.trace_path,
            "wall_s": round(time.time() - t0, 6),
            "metrics": _obs.snapshot() if _obs.is_enabled() else {},
            "error": "",
        }
    except SystemExit:
        # SIGTERM (cancellation or a supervisor kill) unwinding through
        # install_term_handler
        reporter.stop()
        _write_status(job_dir, phase="cancelled", pid=os.getpid())
        raise
    except Exception as exc:  # job failure, not a server failure
        from repro.tools.resilience import WorkerFailure
        failure = WorkerFailure.from_exception(exc)
        logger.warning("job in %s failed: %s", job_dir, failure.summary)
        result["error"] = failure.summary
        result["wall_s"] = round(time.time() - t0, 6)
        if _obs.is_enabled():
            result["metrics"] = _obs.snapshot()
    finally:
        reporter.stop()
    atomic_write_text(os.path.join(job_dir, "result.json"),
                      json.dumps(result, sort_keys=True) + "\n")
    return result


def job_process_main(job_dir: str, cache_dir: str,
                     trace_dir: Optional[str] = None,
                     obs_enabled: bool = False,
                     log_level: Optional[int] = None,
                     fault_specs: Sequence = (),
                     heartbeat_s: float = 0.5,
                     ) -> None:
    """``multiprocessing.Process`` target for one job.

    State is passed explicitly (not inherited) so the worker behaves
    identically under fork and spawn start methods — the same
    discipline as the sweep pool initializer.  Exit code 0 = result
    written with ``status: "done"``; 1 = written with ``"failed"``;
    128+SIGTERM = cancelled mid-run.
    """
    from repro.obs import metrics as _obs
    from repro.testing import faults as _faults
    from repro.tools.resilience import install_term_handler

    install_term_handler()
    _obs.set_enabled(obs_enabled)
    # a forked child inherits the parent's registry; start from zero so
    # the result snapshot merges cleanly instead of double-counting
    _obs.reset()
    if log_level is not None:
        logging.getLogger("repro").setLevel(log_level)
    if fault_specs:
        _faults.set_specs(fault_specs)
    result = run_job(job_dir, cache_dir, trace_dir,
                     heartbeat_s=heartbeat_s)
    sys.exit(EXIT_OK if result.get("status") == "done" else EXIT_FAILED)
