"""The reuse-pattern analyzer: hand-checked traces and path equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import COLD, ReuseAnalyzer, from_raw
from repro.lang import (
    MemoryLayout, Var, load, loop, program, routine, run_program, stmt,
    store,
)

from tests.helpers import NaiveReuseDistance, two_array_kernel


def _manual_analyzer(**kw):
    an = ReuseAnalyzer({"line": 64}, **kw)
    return an


class TestHandTraces:
    def test_cold_then_hit(self):
        an = _manual_analyzer()
        an.enter_scope(0)
        an.access(0, 0, False)     # cold
        an.access(0, 0, False)     # distance 0
        db = an.db("line")
        assert db.cold == {0: 1}
        assert list(db.raw) == [(0, 0, 0)]
        assert db.raw[(0, 0, 0)] == {0: 1}

    def test_distance_counts_distinct_blocks(self):
        an = _manual_analyzer()
        an.enter_scope(0)
        an.access(0, 0, False)        # block 0
        an.access(0, 64, False)       # block 1
        an.access(0, 64 + 8, False)   # block 1 again (same line!)
        an.access(0, 0, False)        # reuse of block 0: distance 1
        db = an.db("line")
        hist = from_raw(db.raw[(0, 0, 0)])
        # one d=0 (same line) and one d=1 (across one distinct block)
        assert hist.bins == {0: 1, 1: 1}

    def test_source_scope_recorded(self):
        an = _manual_analyzer()
        an.enter_scope(0)
        an.enter_scope(1)
        an.access(0, 0, False)     # touched inside scope 1
        an.exit_scope(1)
        an.enter_scope(2)
        an.access(1, 0, False)     # reused inside scope 2
        an.exit_scope(2)
        (key,) = an.db("line").raw
        rid, src, carry = key
        assert rid == 1
        assert src == 1            # last access was inside scope 1
        assert carry == 0          # scope 0 was active before t_prev

    def test_carrying_scope_inner_loop_instances(self):
        an = _manual_analyzer()
        an.enter_scope(0)          # clock 0: routine
        an.enter_scope(1)          # clock 0: outer loop
        an.enter_scope(2)          # inner loop, instance 1
        an.access(0, 0, False)     # clock 1 (cold)
        an.exit_scope(2)
        an.enter_scope(2)          # inner loop, instance 2 (entry clock 1)
        an.access(0, 0, False)     # reuse; prev t=1; carrier = outer loop
        an.exit_scope(2)
        keys = set(an.db("line").raw)
        assert keys == {(0, 2, 1)}

    def test_multi_granularity_independent(self):
        an = ReuseAnalyzer({"line": 64, "page": 512})
        an.enter_scope(0)
        an.access(0, 0, False)
        an.access(0, 128, False)   # new line, same page
        an.access(0, 0, False)     # line distance 1; page distance 0
        line_hist = from_raw(an.db("line").raw[(0, 0, 0)])
        page_hist = from_raw(an.db("page").raw[(0, 0, 0)])
        assert line_hist.bins == {1: 1}
        assert page_hist.bins == {0: 2}
        assert an.distinct_blocks("line") == 2
        assert an.distinct_blocks("page") == 1

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            ReuseAnalyzer({"line": 48})

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ReuseAnalyzer({"line": 64}, engine="magic")
        with pytest.raises(ValueError):
            ReuseAnalyzer({"line": 64}, table="magic")


def _snapshot(an):
    return {
        g.name: (
            {k: dict(sorted(v.items())) for k, v in sorted(g.db.raw.items())},
            dict(sorted(g.db.cold.items())),
        )
        for g in an.grans
    }


class TestPathEquivalence:
    """The specialized closure, the generic loop, and the treap must agree."""

    @pytest.mark.parametrize("engine,table", [
        ("fenwick", "flat"), ("fenwick", "hierarchical"),
        ("treap", "flat"), ("treap", "hierarchical"),
    ])
    def test_all_paths_agree_on_kernel(self, engine, table):
        reference = ReuseAnalyzer({"line": 64, "page": 512})
        run_program(two_array_kernel(12, 12, transposed_b=True), reference)
        other = ReuseAnalyzer({"line": 64, "page": 512},
                              engine=engine, table=table)
        run_program(two_array_kernel(12, 12, transposed_b=True), other)
        assert _snapshot(reference) == _snapshot(other)

    def test_three_granularities_use_generic_path(self):
        an = ReuseAnalyzer({"a": 64, "b": 128, "c": 512})
        run_program(two_array_kernel(6, 6), an)
        assert an.clock > 0
        assert len(an.grans) == 3


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=40),
                min_size=1, max_size=150))
def test_analyzer_distances_match_naive(blocks):
    """Merged histograms equal the naive LRU-stack distance distribution."""
    an = ReuseAnalyzer({"line": 64})
    an.enter_scope(0)
    naive = NaiveReuseDistance(block_size=1)
    expected = {}
    cold = 0
    for b in blocks:
        an.access(0, b * 64, False)
        d = naive.access(b * 64)
        if d is None:
            cold += 1
        else:
            from repro.core.histogram import bin_of
            expected[bin_of(d)] = expected.get(bin_of(d), 0) + 1
    db = an.db("line")
    got = db.raw.get((0, 0, 0), {})
    assert got == expected
    assert db.cold.get(0, 0) == cold


class TestPatternDB:
    def test_patterns_iteration_and_totals(self):
        an = _manual_analyzer()
        run_program(two_array_kernel(8, 8), an)
        db = an.db("line")
        total = db.total_accesses
        assert total == 8 * 8 * 3
        merged = db.merged_histogram()
        assert merged.total == total

    def test_for_ref_filters(self):
        an = _manual_analyzer()
        prog = two_array_kernel(8, 8)
        run_program(prog, an)
        db = an.db("line")
        for p in db.for_ref(0):
            assert p.rid == 0

    def test_cold_patterns_marked(self):
        an = _manual_analyzer()
        run_program(two_array_kernel(8, 8), an)
        db = an.db("line")
        colds = [p for p in db.patterns() if p.is_cold]
        assert colds
        assert all(p.src_sid == COLD for p in colds)
        assert all(p.histogram.reuses == 0 for p in colds)
