"""Calling-context extension (the paper's Section IV sketch)."""

import pytest

from repro.core import ReuseAnalyzer
from repro.core.context import CallingContextTree, for_program
from repro.lang import (
    MemoryLayout, Var, call, load, loop, program, routine, run_program,
    stmt,
)


def _two_caller_prog(n=16):
    """`kernel` is called from two different routines touching one array."""
    lay = MemoryLayout()
    a = lay.array("A", n)
    kernel = routine("kernel",
                     loop("k", 1, n, stmt(load(a, Var("k"))), name="K"))
    caller1 = routine("caller1", call("kernel"))
    caller2 = routine("caller2", call("kernel"))
    main = routine("main",
                   loop("t", 1, 3, call("caller1"), call("caller2"),
                        name="T"))
    return program("p", lay, [main, caller1, caller2, kernel])


class TestCallingContextTree:
    def test_interning(self):
        cct = CallingContextTree()
        a = cct.child(0, 5)
        b = cct.child(0, 5)
        assert a == b
        c = cct.child(a, 7)
        assert c != a
        assert cct.path(c) == [5, 7]

    def test_root_path_empty(self):
        assert CallingContextTree().path(0) == []

    def test_label(self):
        prog = _two_caller_prog()
        cct = CallingContextTree()
        main = prog.scope_named("main").sid
        kernel = prog.scope_named("kernel").sid
        ctx = cct.child(cct.child(0, main), kernel)
        assert cct.label(ctx, prog) == "main -> kernel"


class TestContextAnalyzer:
    def test_collapse_matches_plain_analyzer(self):
        prog = _two_caller_prog()
        plain = ReuseAnalyzer({"line": 64})
        run_program(prog, plain)
        ctx_an = for_program(_two_caller_prog(), {"line": 64})
        run_program(_two_caller_prog(), ctx_an)
        collapsed = ctx_an.collapsed_db("line")
        assert collapsed.raw == plain.db("line").raw
        assert collapsed.cold == plain.db("line").cold

    def test_distinct_contexts_recorded(self):
        prog = _two_caller_prog()
        analyzer = for_program(prog, {"line": 64})
        run_program(prog, analyzer)
        # find the pattern(s) for the kernel's load and check they split
        # across (at least) the two caller contexts
        contexts = set()
        for (rid, _src, _carry, ctx) in analyzer.db("line").raw:
            contexts.add(ctx)
        labels = {analyzer.cct.label(c, prog) for c in contexts}
        assert "main -> caller1 -> kernel" in labels
        assert "main -> caller2 -> kernel" in labels

    def test_contexts_of_counts(self):
        prog = _two_caller_prog()
        analyzer = for_program(prog, {"line": 64})
        run_program(prog, analyzer)
        # pick the heaviest collapsed pattern and split it by context
        collapsed = analyzer.collapsed_db("line")
        key = max(collapsed.raw, key=lambda k: sum(collapsed.raw[k].values()))
        split = analyzer.contexts_of("line", *key)
        assert sum(split.values()) == sum(collapsed.raw[key].values())
        assert len(split) >= 2  # reuse seen from both callers

    def test_cct_stays_small(self):
        """Contexts are interned: size ~ distinct call paths, not calls."""
        prog = _two_caller_prog()
        analyzer = for_program(prog, {"line": 64})
        run_program(prog, analyzer)
        # main, caller1, caller2, kernel-under-1, kernel-under-2 (+root)
        assert len(analyzer.cct) <= 8
