"""Property test: the bisect carrying-scope search vs a brute-force oracle.

The oracle implements the paper's literal description — walk the dynamic
stack from the top, return the first frame entered before the previous
access — with a plain linear scan.  The production implementation uses a
binary search over the (monotone) entry clocks; they must always agree,
for arbitrary interleavings of scope events and accesses.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scopestack import ScopeStack


def oracle_carrying(frames, t_prev):
    """Linear top-down scan, as Section II describes it."""
    for sid, clock in reversed(frames):
        if clock < t_prev:
            return sid
    return frames[0][0] if frames else -1


# An action is: 0 = enter a scope, 1 = exit, 2 = memory access.
actions = st.lists(st.integers(min_value=0, max_value=2),
                   min_size=1, max_size=120)


@settings(max_examples=200, deadline=None)
@given(actions=actions, t_query_frac=st.floats(0.0, 1.0))
def test_bisect_matches_linear_scan(actions, t_query_frac):
    stack = ScopeStack()
    clock = 0
    next_sid = 0
    stack.enter(next_sid, clock)   # a root scope is always active
    next_sid += 1
    access_times = [0]
    for action in actions:
        if action == 0:
            stack.enter(next_sid, clock)
            next_sid += 1
        elif action == 1 and stack.depth() > 1:
            stack.exit(stack.current())
        else:
            clock += 1
            access_times.append(clock)
    # Query with a "previous access time" drawn from the run's history.
    t_prev = access_times[int(t_query_frac * (len(access_times) - 1))]
    assert stack.carrying(t_prev) == oracle_carrying(stack.frames(), t_prev)
