"""Block tables: hierarchical (paper-faithful) vs flat equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocktable import FlatBlockTable, HierarchicalBlockTable


TABLES = [FlatBlockTable, HierarchicalBlockTable]


@pytest.mark.parametrize("table_cls", TABLES)
class TestBlockTable:
    def test_get_missing_is_none(self, table_cls):
        assert table_cls().get(12345) is None

    def test_set_get_roundtrip(self, table_cls):
        t = table_cls()
        t.set(7, (10, 1, 2))
        assert t.get(7) == (10, 1, 2)

    def test_overwrite(self, table_cls):
        t = table_cls()
        t.set(7, (10, 1, 2))
        t.set(7, (20, 3, 4))
        assert t.get(7) == (20, 3, 4)
        assert len(t) == 1

    def test_len_counts_distinct_blocks(self, table_cls):
        t = table_cls()
        for block in (1, 2, 3, 2, 1):
            t.set(block, (0, 0, 0))
        assert len(t) == 3

    def test_sparse_far_apart_blocks(self, table_cls):
        t = table_cls()
        blocks = [0, 1023, 1024, 2 ** 20, 2 ** 30, 2 ** 40]
        for k, block in enumerate(blocks):
            t.set(block, (k, 0, 0))
        for k, block in enumerate(blocks):
            assert t.get(block) == (k, 0, 0)

    def test_blocks_iteration_sorted(self, table_cls):
        t = table_cls()
        for block in (99, 5, 2 ** 21 + 3, 0):
            t.set(block, (block, 0, 0))
        listed = list(t.blocks())
        assert [b for b, _ in listed] == sorted(b for b, _ in listed)
        assert all(entry == (b, 0, 0) for b, entry in listed)


@settings(max_examples=100, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=2 ** 34),
              st.integers(min_value=0, max_value=1000)),
    min_size=1, max_size=200))
def test_hierarchical_matches_flat(ops):
    flat, hier = FlatBlockTable(), HierarchicalBlockTable()
    for block, time in ops:
        flat.set(block, (time, 0, 0))
        hier.set(block, (time, 0, 0))
    assert len(flat) == len(hier)
    for block, _ in ops:
        assert flat.get(block) == hier.get(block)
    assert list(flat.blocks()) == list(hier.blocks())
