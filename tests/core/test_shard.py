"""Unit tests for the time-sliced shard machinery.

Recording fidelity, trace splitting invariants (contiguity, seed scope
stacks, boundary placement), the degenerate shard counts, and the shard
observability counters.  Byte-identity of the merged output against the
sequential engines lives in ``tests/integration/test_shard_equivalence``.
"""

import pickle

import pytest

from repro.apps.kernels import stream_triad
from repro.apps.sweep3d import SweepParams, build_original
from repro.core import ReuseAnalyzer
from repro.core.shard import (
    RecordedTrace, ShardBatchState, analyze_shard, analyze_trace_sharded,
    merge_shard_results, record_trace, run_shards, split_trace,
)
from repro.lang import BatchExecutor
from repro.model import MachineConfig

GRANS = MachineConfig.scaled_itanium2().granularities()


def _slice_accesses(sl) -> int:
    total = 0
    for op in sl.ops:
        if op[0] == "batch":
            total += len(op[2])
        elif op[0] == "rows":
            total += op[5] * len(op[3])
    return total


class TestRecording:
    def test_recorded_stats_match_direct_run(self):
        build = lambda: build_original(SweepParams(n=6, mm=3, nm=2, noct=1))
        analyzer = ReuseAnalyzer(GRANS, engine="numpy")
        direct = BatchExecutor(build(), analyzer).run()
        trace, stats = record_trace(build())
        assert vars(stats) == vars(direct)
        assert trace.accesses == direct.accesses

    def test_rows_stay_unmaterialized(self):
        # The triad's inner loops are affine: recording must keep them as
        # rows ops, not expand them into per-access batch payloads.
        trace, stats = record_trace(stream_triad(512, 2))
        rows = [op for op in trace.ops if op[0] == "rows"]
        assert rows
        materialized = sum(len(op[2]) for op in trace.ops
                           if op[0] == "batch")
        assert materialized < stats.accesses

    def test_scalar_coalescing(self):
        from repro.core.shard import StreamRecorder
        rec = StreamRecorder()
        rec.enter_scope(1)
        for addr in (0, 64, 128):
            rec.access(0, addr, False)
        rec.exit_scope(1)
        rec._close()
        assert rec.ops == [("enter", 1),
                           ("batch", [0, 0, 0], [0, 64, 128],
                            [False, False, False], 0),
                           ("exit", 1)]


class TestSplitting:
    def test_contiguous_cover(self):
        trace, _ = record_trace(build_original(SweepParams(n=6, mm=3,
                                                           nm=2, noct=1)))
        for k in (1, 2, 3, 5, 8):
            slices = split_trace(trace, k)
            assert len(slices) == k
            assert slices[0].start == 0
            for prev, cur in zip(slices, slices[1:]):
                assert cur.start == prev.start + prev.length
            assert sum(sl.length for sl in slices) == trace.accesses
            for sl in slices:
                assert _slice_accesses(sl) == sl.length
                # seed scopes were all entered strictly before the shard
                assert all(c < sl.start or sl.length == 0
                           for c in sl.seed_clocks)
                assert len(sl.seed_sids) == len(sl.seed_clocks)

    def test_seed_stack_matches_replay(self):
        trace, _ = record_trace(build_original(SweepParams(n=6, mm=3,
                                                           nm=2, noct=1)))
        slices = split_trace(trace, 4)
        stack = []
        consumed = 0
        cut_points = {sl.start: sl for sl in slices[1:]}
        for op in trace.ops:
            if consumed in cut_points:
                sl = cut_points.pop(consumed)
                if sl.ops and sl.ops[0][0] not in ("enter", "exit"):
                    assert list(sl.seed_sids) == [s for s, _c in stack]
            if op[0] == "enter":
                stack.append((op[1], consumed))
            elif op[0] == "exit":
                stack.pop()
            elif op[0] == "batch":
                consumed += len(op[2])
            else:
                consumed += op[5] * len(op[3])

    def test_more_shards_than_accesses_clamps(self):
        trace, _ = record_trace(stream_triad(4, 1))
        slices = split_trace(trace, 10 ** 6)
        assert len(slices) == trace.accesses
        assert all(sl.length == 1 for sl in slices)

    def test_empty_trace_single_shard(self):
        slices = split_trace(RecordedTrace(ops=(), accesses=0), 7)
        assert len(slices) == 1
        assert slices[0].length == 0 and slices[0].ops == ()

    def test_scope_event_on_cut_goes_to_next_shard(self):
        # accesses 0,1 | 2,3 — the exit/enter pair lands exactly on the
        # cut and must open shard 1, so its seeds stay strictly pre-start.
        ops = (("enter", 1),
               ("batch", [0, 0], [0, 64], [False, False], 0),
               ("exit", 1),
               ("enter", 2),
               ("batch", [0, 0], [0, 128], [False, False], 0),
               ("exit", 2))
        slices = split_trace(RecordedTrace(ops=ops, accesses=4), 2)
        assert slices[0].ops[-1][0] == "batch"
        assert slices[1].ops[0] == ("exit", 1)
        assert slices[1].seed_sids == (1,)
        assert slices[1].seed_clocks == (0,)

    def test_mid_row_cut_materializes_only_partial_rows(self):
        # One rows op: 3 refs/iteration x 4 iterations = 12 accesses.
        ops = (("rows", (0, 1, 2), (False, False, True),
                (0, 1000, 2000), (8, 8, 8), 4),)
        slices = split_trace(RecordedTrace(ops=ops, accesses=12), 3)
        # 12/3 = 4 accesses per shard: every boundary is mid-row.
        kinds = [[op[0] for op in sl.ops] for sl in slices]
        assert kinds[0] == ["rows", "batch"]          # 1 whole row + 1 ref
        assert kinds[1] == ["batch", "batch"]         # tail + head partials
        assert kinds[2] == ["batch", "rows"]
        assert [_slice_accesses(sl) for sl in slices] == [4, 4, 4]
        # the resumed whole-row piece keeps its stride with shifted bases
        assert slices[2].ops[1] == ("rows", (0, 1, 2), (False, False, True),
                                    (24, 1024, 2024), (8, 8, 8), 1)

    def test_emit_rows_piece_middle_rows_stay_unmaterialized(self):
        from repro.core.shard import _emit_rows_piece
        out = []
        _emit_rows_piece(out, (0, 1, 2), (False, False, True),
                         (0, 1000, 2000), (8, 8, 8), 3, 1, 8)
        assert out == [
            ("batch", [1, 2], [1000, 2000], [False, True], 0),
            ("rows", (0, 1, 2), (False, False, True),
             (8, 1008, 2008), (8, 8, 8), 2),
        ]


class TestShardAnalysis:
    def test_shard_workers_never_classify_cold(self):
        trace, _ = record_trace(stream_triad(128, 2))
        for sl in split_trace(trace, 3):
            res = analyze_shard(sl, GRANS)
            for g in res.grans:
                assert g["unresolved"]
                # boundary set is time-ordered
                clocks = [e[1] for e in g["unresolved"]]
                assert clocks == sorted(clocks)

    def test_merge_single_shard_equals_sequential(self):
        build = lambda: stream_triad(128, 2)
        analyzer = ReuseAnalyzer(GRANS, engine="numpy")
        BatchExecutor(build(), analyzer).run()
        trace, _ = record_trace(build())
        (sl,) = split_trace(trace, 1)
        state = merge_shard_results([analyze_shard(sl, GRANS)], GRANS,
                                    trace.accesses)
        assert pickle.dumps(state) == pickle.dumps(analyzer.dump_state())

    def test_results_merge_in_any_order(self):
        trace, _ = record_trace(stream_triad(128, 2))
        slices = split_trace(trace, 4)
        results = [analyze_shard(sl, GRANS) for sl in slices]
        forward = merge_shard_results(results, GRANS, trace.accesses)
        shuffled = merge_shard_results(list(reversed(results)), GRANS,
                                       trace.accesses)
        assert pickle.dumps(shuffled) == pickle.dumps(forward)

    def test_boundary_counter_and_worker_metrics(self, obs_on):
        trace, _ = record_trace(stream_triad(128, 2))
        state = analyze_trace_sharded(trace, GRANS, 3)
        assert state["clock"] == trace.accesses
        counters = obs_on.snapshot()["counters"]
        assert counters["shard.workers"] == 3
        assert counters["shard.boundary_unresolved"] > 0
        timers = obs_on.snapshot()["timers"]
        assert timers["shard.worker_latency"]["count"] == 3

    def test_run_shards_pool_matches_inline(self):
        trace, _ = record_trace(stream_triad(256, 2))
        slices = split_trace(trace, 3)
        inline = run_shards(slices, GRANS, jobs=1)
        pooled = run_shards(slices, GRANS, jobs=2)
        key = lambda rs: pickle.dumps(
            merge_shard_results(rs, GRANS, trace.accesses))
        assert key(pooled) == key(inline)

    def test_seed_depth_shrinks_on_seed_exit(self):
        # A shard that exits a seeded scope must not attribute later
        # boundary reuses to it: _seed_live tracks the shrinking prefix.
        analyzer = ReuseAnalyzer(GRANS, engine="numpy")
        state = ShardBatchState(analyzer, seed_len=2)
        analyzer._install_numpy_state(state)
        analyzer.clock = 10
        analyzer.stack._sids.extend([1, 2])
        analyzer.stack._clocks.extend([0, 5])
        analyzer.exit_scope(2)
        assert state._seed_live == 1
        analyzer.enter_scope(3)
        assert state._seed_live == 1
        analyzer.exit_scope(3)
        assert state._seed_live == 1
        analyzer.exit_scope(1)
        assert state._seed_live == 0


@pytest.mark.parametrize("shards", [0, -3])
def test_invalid_shard_count_clamps_to_one(shards):
    trace, _ = record_trace(stream_triad(16, 1))
    assert len(split_trace(trace, shards)) == 1
