"""Scope stack and carrying-scope semantics (Section II)."""

import pytest

from repro.core.scopestack import ScopeStack


class TestStackDiscipline:
    def test_enter_exit(self):
        s = ScopeStack()
        s.enter(1, 0)
        s.enter(2, 5)
        assert s.depth() == 2
        assert s.current() == 2
        s.exit(2)
        assert s.current() == 1

    def test_mismatched_exit_raises(self):
        s = ScopeStack()
        s.enter(1, 0)
        with pytest.raises(ValueError):
            s.exit(9)

    def test_underflow_raises(self):
        with pytest.raises(IndexError):
            ScopeStack().exit(1)

    def test_current_empty(self):
        assert ScopeStack().current() == -1

    def test_frames(self):
        s = ScopeStack()
        s.enter(1, 0)
        s.enter(2, 7)
        assert s.frames() == [(1, 0), (2, 7)]


class TestCarrying:
    def test_paper_semantics(self):
        """The carrying scope is the most recent scope entered before the
        previous access (the deepest frame with entry clock < t_prev)."""
        s = ScopeStack()
        s.enter(10, 0)    # main
        s.enter(20, 3)    # outer loop, entered at clock 3
        s.enter(30, 9)    # inner loop, entered at clock 9
        # previous access at clock 5: after outer entered, before inner
        assert s.carrying(5) == 20
        # previous access at clock 11: inner loop carries
        assert s.carrying(11) == 30
        # previous access at clock 1: only main was active
        assert s.carrying(1) == 10

    def test_entry_exactly_at_t_prev_not_carrying(self):
        """A scope entered at clock == t_prev was entered *after* the
        access that set the clock to t_prev."""
        s = ScopeStack()
        s.enter(10, 0)
        s.enter(20, 5)
        assert s.carrying(5) == 10

    def test_reentered_inner_loop(self):
        """Classic i/j nest: reuse across outer iterations is carried by
        the outer loop even though an inner instance is active."""
        s = ScopeStack()
        s.enter(1, 0)      # main
        s.enter(2, 2)      # j loop
        s.enter(3, 4)      # i loop, first instance
        t_prev = 6         # access inside first i instance
        s.exit(3)
        s.enter(3, 8)      # i loop, second instance
        assert s.carrying(t_prev) == 2  # j loop drives the reuse

    def test_prev_before_everything(self):
        s = ScopeStack()
        s.enter(5, 10)
        assert s.carrying(3) == 5  # falls back to the outermost frame

    def test_empty_stack(self):
        assert ScopeStack().carrying(5) == -1
