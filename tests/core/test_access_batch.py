"""Equivalence of ``access_batch`` against the scalar ``access`` path.

The batched pipeline's contract is exact: for any chunking of any access
stream — flat or row-periodic, with or without the specialized
Fenwick/flat closure — the resulting pattern databases, cold counts,
footprints, and clock must be byte-identical to feeding the same stream
one access at a time.
"""

import random

import pytest

from repro.core import ReuseAnalyzer

GRANS_ONE = {"line": 64}
GRANS_TWO = {"line": 64, "page": 512}


def _random_trace(seed, n_chunks=30, periodic=False):
    """Scope events interleaved with access chunks.

    Returns a list of ("scope", [(sid, enter?)...]) and
    ("chunk", rids, addrs, stores, period) entries.  Addresses live in a
    small block universe so reuses, duplicate blocks inside one row, and
    steady-state repeated rows (runs) all occur; chunk boundaries land
    mid-run so runs cross access_batch calls.
    """
    rng = random.Random(seed)
    events = []
    depth = 0
    sid = 0
    for _ in range(n_chunks):
        scope_ops = []
        for _ in range(rng.randrange(3)):
            if depth and rng.random() < 0.5:
                scope_ops.append((sid, False))
                depth -= 1
            else:
                sid += 1
                scope_ops.append((sid, True))
                depth += 1
        if scope_ops:
            events.append(("scope", scope_ops))
        if periodic:
            k = rng.choice((1, 2, 3, 4))
            rows = rng.randrange(1, 12)
            rids = [rng.randrange(6) for _ in range(k)]
            stores = [rng.random() < 0.3 for _ in range(k)]
            # A handful of base rows; repeating one produces runs.  Small
            # strides make several positions alias to one block (duplicate
            # blocks within a row), zero strides repeat blocks exactly.
            base = [rng.randrange(0, 4096, 8) for _ in range(k)]
            stride = [rng.choice((0, 8, 8, 64, 512)) for _ in range(k)]
            addrs = []
            row_i = 0
            while len(addrs) < rows * k:
                repeatrow = rng.randrange(1, 6)
                for _ in range(repeatrow):
                    if len(addrs) >= rows * k:
                        break
                    addrs.extend(base[p] + row_i * stride[p]
                                 for p in range(k))
                row_i += 1
            events.append(("chunk", rids * rows, addrs,
                           stores * rows, k))
        else:
            m = rng.randrange(1, 40)
            rids = [rng.randrange(6) for _ in range(m)]
            addrs = [rng.randrange(0, 4096, 8) for _ in range(m)]
            stores = [rng.random() < 0.3 for _ in range(m)]
            events.append(("chunk", rids, addrs, stores, 0))
    while depth:
        events.append(("scope", [(0, False)]))
        depth -= 1
    return events


def _feed_scalar(analyzer, events):
    for kind, *payload in events:
        if kind == "scope":
            for sid, enter in payload[0]:
                if enter:
                    analyzer.enter_scope(sid)
                else:
                    analyzer.exit_scope(sid)
        else:
            rids, addrs, stores, _period = payload
            for i, rid in enumerate(rids):
                analyzer.access(rid, addrs[i], stores[i])


def _feed_batched(analyzer, events, split=False):
    rng = random.Random(99)
    for kind, *payload in events:
        if kind == "scope":
            for sid, enter in payload[0]:
                if enter:
                    analyzer.enter_scope(sid)
                else:
                    analyzer.exit_scope(sid)
        else:
            rids, addrs, stores, period = payload
            if split and len(rids) > period > 0:
                # Deliver in two row-aligned calls: runs cross the seam.
                cut = period * rng.randrange(1, len(rids) // period + 1)
                analyzer.access_batch(rids[:cut], addrs[:cut],
                                      stores[:cut], period)
                analyzer.access_batch(rids[cut:], addrs[cut:],
                                      stores[cut:], period)
            else:
                analyzer.access_batch(rids, addrs, stores, period)


@pytest.mark.parametrize("grans", [GRANS_ONE, GRANS_TWO],
                         ids=["1gran", "2grans"])
@pytest.mark.parametrize("engine,table", [
    ("fenwick", "flat"),          # specialized batch closure
    ("fenwick", "hierarchical"),  # generic batch fallback
    ("treap", "flat"),            # generic batch fallback
    ("numpy", "flat"),            # buffered array engine
    ("numpy", "hierarchical"),    # buffered array engine, 3-level table
], ids=["fenwick-flat", "fenwick-hier", "treap-flat", "numpy-flat",
        "numpy-hier"])
@pytest.mark.parametrize("periodic", [False, True],
                         ids=["flat-chunks", "row-chunks"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batch_equals_scalar(grans, engine, table, periodic, seed):
    events = _random_trace(seed, periodic=periodic)
    scalar = ReuseAnalyzer(dict(grans), engine=engine, table=table)
    batched = ReuseAnalyzer(dict(grans), engine=engine, table=table)
    _feed_scalar(scalar, events)
    _feed_batched(batched, events, split=periodic)
    assert batched.clock == scalar.clock
    assert batched.dump_state() == scalar.dump_state()


@pytest.mark.parametrize("flush_threshold", [7, 64, None],
                         ids=["flush7", "flush64", "flush-default"])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_three_way_engine_equivalence(seed, flush_threshold):
    """fenwick, treap, and numpy produce byte-identical pattern databases.

    The numpy analyzer is additionally driven at a tiny flush threshold so
    buffered windows end mid-run, mid-scope, and mid-chunk — every seam the
    array engine's cross-buffer distance logic has to stitch.
    """
    events = _random_trace(seed, periodic=bool(seed % 2))
    dumps = {}
    for engine in ("fenwick", "treap", "numpy"):
        analyzer = ReuseAnalyzer(dict(GRANS_TWO), engine=engine)
        if engine == "numpy" and flush_threshold is not None:
            analyzer._np_state.flush_threshold = flush_threshold
        _feed_batched(analyzer, events, split=True)
        dumps[engine] = analyzer.dump_state()
    assert dumps["treap"] == dumps["fenwick"]
    assert dumps["numpy"] == dumps["fenwick"]


@pytest.mark.parametrize("chunk", [1, 3, 17, 1000])
def test_numpy_chunk_boundaries_are_invisible(chunk):
    """One stream, many chunkings: identical databases regardless of where
    access_batch calls split it (including splits inside steady-state runs
    and straddling internal flushes)."""
    rng = random.Random(42)
    rids, addrs, stores = [], [], []
    row = [(0x4000 + 64 * b, rng.randrange(4)) for b in range(3)]
    for _ in range(40):
        if rng.random() < 0.3:   # repeated rows -> runs
            for _ in range(rng.randrange(2, 6)):
                for addr, rid in row:
                    rids.append(rid)
                    addrs.append(addr)
                    stores.append(False)
        else:
            rids.append(rng.randrange(4))
            addrs.append(rng.randrange(0, 2048, 8))
            stores.append(rng.random() < 0.5)
    reference = ReuseAnalyzer(dict(GRANS_TWO), engine="numpy")
    reference.access_batch(rids, addrs, stores, 0)
    expected = reference.dump_state()
    analyzer = ReuseAnalyzer(dict(GRANS_TWO), engine="numpy")
    analyzer._np_state.flush_threshold = 29   # force mid-stream flushes
    for lo in range(0, len(rids), chunk):
        hi = lo + chunk
        analyzer.access_batch(rids[lo:hi], addrs[lo:hi], stores[lo:hi], 0)
    assert analyzer.dump_state() == expected


def test_specialized_closure_installed_only_for_fenwick_flat():
    spec = ReuseAnalyzer(dict(GRANS_TWO))
    assert "access_batch" in spec.__dict__
    for kwargs in ({"engine": "treap"}, {"table": "hierarchical"}):
        generic = ReuseAnalyzer(dict(GRANS_TWO), **kwargs)
        assert "access_batch" not in generic.__dict__


def test_period_zero_disables_row_mode():
    # Same stream once with the row hint, once without: identical results.
    events = _random_trace(7, periodic=True)
    hinted = ReuseAnalyzer(dict(GRANS_TWO))
    unhinted = ReuseAnalyzer(dict(GRANS_TWO))
    _feed_batched(hinted, events)
    _feed_batched(unhinted, [
        (kind, *payload[:-1], 0) if kind == "chunk" else (kind, *payload)
        for kind, *payload in events
    ])
    assert hinted.dump_state() == unhinted.dump_state()


def test_reuse_predating_batch():
    # t_prev earlier than every scope entry on the stack: the bisect
    # fallback path inside the batch closure.
    analyzer = ReuseAnalyzer(dict(GRANS_ONE))
    scalar = ReuseAnalyzer(dict(GRANS_ONE))
    addr = 0x1000
    for an in (analyzer, scalar):
        an.access(0, addr, False)        # touch before any scope exists
        an.enter_scope(1)
        an.enter_scope(2)
    analyzer.access_batch([0, 0], [addr, addr + 8], [False, False], 0)
    scalar.access(0, addr, False)
    scalar.access(0, addr + 8, False)
    assert analyzer.dump_state() == scalar.dump_state()


def test_empty_batch_is_noop():
    analyzer = ReuseAnalyzer(dict(GRANS_TWO))
    analyzer.access_batch([], [], [], 4)
    assert analyzer.clock == 0
    assert analyzer.dump_state()["grans"][0]["raw"] == {}


def test_long_run_multiplication_exact():
    # One row repeated many times: bins must accumulate run_len exactly
    # and the footprint/clock must advance as if walked per access.
    k, reps = 3, 50
    addrs_row = [0x2000, 0x2008, 0x2040]   # two lines, duplicate block
    rids_row = [1, 2, 3]
    batched = ReuseAnalyzer(dict(GRANS_TWO))
    scalar = ReuseAnalyzer(dict(GRANS_TWO))
    for an in (batched, scalar):
        an.enter_scope(5)
    batched.access_batch(rids_row * reps, addrs_row * reps,
                         [False] * (k * reps), k)
    for _ in range(reps):
        for rid, addr in zip(rids_row, addrs_row):
            scalar.access(rid, addr, False)
    assert batched.dump_state() == scalar.dump_state()
    assert batched.clock == k * reps
