"""Histogram binning invariants and statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import (
    EXACT_LIMIT, Histogram, bin_mid, bin_of, bin_range, from_raw,
)


class TestBinning:
    def test_small_distances_exact(self):
        for d in range(EXACT_LIMIT):
            assert bin_of(d) == d
            assert bin_range(d) == (d, d)

    def test_boundary_bin(self):
        lo, hi = bin_range(bin_of(EXACT_LIMIT))
        assert lo == EXACT_LIMIT

    def test_bins_monotone(self):
        prev = -1
        for d in [1, 10, 255, 256, 300, 512, 1000, 4096, 10 ** 6]:
            b = bin_of(d)
            assert b >= prev
            prev = b

    def test_mid_within_range(self):
        for d in [1, 100, 256, 1000, 123456]:
            b = bin_of(d)
            lo, hi = bin_range(b)
            assert lo <= bin_mid(b) <= hi


@settings(max_examples=300, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 40))
def test_distance_falls_in_its_bin_range(d):
    lo, hi = bin_range(bin_of(d))
    assert lo <= d <= hi


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=256, max_value=2 ** 30))
def test_log_bin_relative_error_bounded(d):
    """Sub-binned log bins keep relative width below 25%."""
    lo, hi = bin_range(bin_of(d))
    assert (hi - lo + 1) / lo <= 0.25 + 1e-9


class TestHistogram:
    def test_add_and_total(self):
        h = Histogram()
        h.add(5)
        h.add(5)
        h.add(1000)
        h.add_cold(3)
        assert h.reuses == 3
        assert h.cold == 3
        assert h.total == 6

    def test_items_sorted_with_counts(self):
        h = Histogram()
        h.add(100, 2)
        h.add(3)
        rows = list(h.items())
        assert rows[0] == (3, 3, 1)
        assert rows[1] == (100, 100, 2)

    def test_merge(self):
        h1, h2 = Histogram(), Histogram()
        h1.add(4, 2)
        h2.add(4, 3)
        h2.add_cold()
        merged = h1.merge(h2)
        assert merged.reuses == 5
        assert merged.cold == 1
        assert h1.reuses == 2  # merge does not mutate

    def test_count_at_least_exact_bins(self):
        h = Histogram()
        for d in (1, 5, 10, 200):
            h.add(d)
        assert h.count_at_least(6) == 2
        assert h.count_at_least(0) == 4
        assert h.count_at_least(201) == 0

    def test_count_at_least_includes_cold(self):
        h = Histogram()
        h.add(1)
        h.add_cold(2)
        assert h.count_at_least(10 ** 9) == 2

    def test_count_at_least_fractional_straddle(self):
        h = Histogram()
        h.add(300, 100)  # bin [256+, ...] covering 300
        lo, hi = None, None
        from repro.core.histogram import bin_range, bin_of
        lo, hi = bin_range(bin_of(300))
        threshold = (lo + hi + 1) // 2
        frac = h.count_at_least(threshold)
        assert 0 < frac < 100

    def test_quantile_monotone(self):
        h = Histogram()
        for d in (1, 2, 4, 8, 16, 5000):
            h.add(d)
        qs = [h.quantile(q) for q in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert qs == sorted(qs)

    def test_quantile_empty(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_mean(self):
        h = Histogram()
        h.add(10, 2)
        h.add(20, 2)
        assert h.mean() == pytest.approx(15.0)

    def test_from_raw_shares_nothing(self):
        raw = {3: 5}
        h = from_raw(raw, cold=1)
        raw[3] = 99
        assert h.bins[3] == 5
        assert h.cold == 1
