"""PatternDB slow-path API and ReusePattern semantics."""

import pytest

from repro.core import COLD, PatternDB, ReusePattern, from_raw
from repro.core.histogram import bin_of


class TestPatternDB:
    def test_add_and_pattern_lookup(self):
        db = PatternDB()
        db.add(rid=1, src_sid=2, carry_sid=3, distance=10)
        db.add(rid=1, src_sid=2, carry_sid=3, distance=10)
        db.add(rid=1, src_sid=2, carry_sid=3, distance=500)
        pattern = db.pattern((1, 2, 3))
        assert pattern is not None
        assert pattern.histogram.reuses == 3
        assert pattern.histogram.bins[bin_of(10)] == 2

    def test_pattern_missing(self):
        assert PatternDB().pattern((9, 9, 9)) is None

    def test_cold_tracking(self):
        db = PatternDB()
        db.add_cold(5)
        db.add_cold(5)
        db.add_cold(7)
        colds = [p for p in db.patterns() if p.is_cold]
        assert {p.rid for p in colds} == {5, 7}
        assert sum(p.accesses for p in colds) == 3

    def test_total_accesses(self):
        db = PatternDB()
        db.add(0, 0, 0, 4)
        db.add(1, 0, 0, 4)
        db.add_cold(0)
        assert db.total_accesses == 3
        assert len(db) == 3  # two reuse patterns + one cold pattern

    def test_for_ref(self):
        db = PatternDB()
        db.add(0, 1, 1, 4)
        db.add(1, 1, 1, 4)
        assert {p.rid for p in db.for_ref(0)} == {0}

    def test_merged_histogram_scoped_to_ref(self):
        db = PatternDB()
        db.add(0, 1, 1, 4)
        db.add(0, 2, 2, 8)
        db.add(1, 1, 1, 4)
        db.add_cold(0)
        merged = db.merged_histogram(rid=0)
        assert merged.reuses == 2
        assert merged.cold == 1


class TestReusePattern:
    def test_key_roundtrip(self):
        pattern = ReusePattern(3, 1, 2, from_raw({0: 5}))
        assert pattern.key == (3, 1, 2)
        assert pattern.accesses == 5
        assert not pattern.is_cold

    def test_cold_flag(self):
        pattern = ReusePattern(3, COLD, COLD, from_raw({}, cold=2))
        assert pattern.is_cold
        assert pattern.accesses == 2

    def test_repr(self):
        text = repr(ReusePattern(3, 1, 2, from_raw({0: 5})))
        assert "rid=3" in text
