"""Trace-store eviction: LRU by access time, live stores protected."""

import os
import time

import pytest

from repro.core.tracestore import (
    gc_trace_dir, load_trace, record_spilled, scan_trace_dir,
)
from tests.helpers import two_array_kernel


def _make_store(trace_dir, n, atime):
    """Record one store and pin its (a|m)time for deterministic LRU."""
    stored, _ = record_spilled(two_array_kernel(n, n), str(trace_dir))
    for name in os.listdir(stored.path):
        os.utime(os.path.join(stored.path, name), (atime, atime))
    return stored


class TestScan:
    def test_scan_lists_stores_with_sizes(self, tmp_path):
        old = _make_store(tmp_path, 8, atime=1_000_000.0)
        new = _make_store(tmp_path, 12, atime=2_000_000.0)
        usages = {u.path: u for u in scan_trace_dir(str(tmp_path))}
        assert set(usages) == {old.path, new.path}
        assert all(u.bytes > 0 for u in usages.values())
        assert usages[old.path].atime < usages[new.path].atime

    def test_scan_ignores_junk_dirs(self, tmp_path):
        _make_store(tmp_path, 8, atime=1_000_000.0)
        junk = tmp_path / "not-a-store"
        junk.mkdir()
        (junk / "noise.bin").write_bytes(b"xxxx")
        (tmp_path / ".hidden").mkdir()
        assert len(scan_trace_dir(str(tmp_path))) == 1

    def test_scan_missing_dir(self, tmp_path):
        assert scan_trace_dir(str(tmp_path / "absent")) == []


class TestGC:
    def test_evicts_coldest_first(self, tmp_path):
        cold = _make_store(tmp_path, 8, atime=1_000_000.0)
        warm = _make_store(tmp_path, 10, atime=2_000_000.0)
        hot = _make_store(tmp_path, 12, atime=3_000_000.0)
        total = sum(u.bytes for u in scan_trace_dir(str(tmp_path)))
        coldest_size = next(u.bytes for u in scan_trace_dir(str(tmp_path))
                            if u.path == cold.path)
        result = gc_trace_dir(str(tmp_path),
                              max_bytes=total - coldest_size)
        assert result.evicted == [cold.path]
        assert not os.path.exists(cold.path)
        assert os.path.exists(warm.path)
        # survivors still load
        assert load_trace(hot.path).accesses > 0

    def test_under_budget_evicts_nothing(self, tmp_path):
        _make_store(tmp_path, 8, atime=1_000_000.0)
        total = sum(u.bytes for u in scan_trace_dir(str(tmp_path)))
        result = gc_trace_dir(str(tmp_path), max_bytes=total)
        assert result.evicted == []
        assert result.freed_bytes == 0
        assert result.total_bytes_after == total

    def test_protected_stores_survive_even_over_budget(self, tmp_path):
        cold = _make_store(tmp_path, 8, atime=1_000_000.0)
        hot = _make_store(tmp_path, 12, atime=2_000_000.0)
        result = gc_trace_dir(str(tmp_path), max_bytes=0,
                              protect=[cold.path])
        assert cold.path in result.protected
        assert os.path.exists(cold.path)
        assert hot.path in result.evicted
        assert not os.path.exists(hot.path)
        assert result.total_bytes_after > 0  # cold stayed

    def test_dry_run_deletes_nothing(self, tmp_path):
        cold = _make_store(tmp_path, 8, atime=1_000_000.0)
        result = gc_trace_dir(str(tmp_path), max_bytes=0, dry_run=True)
        assert result.evicted == [cold.path]
        assert os.path.exists(cold.path)

    def test_result_to_dict_roundtrips_json(self, tmp_path):
        import json
        _make_store(tmp_path, 8, atime=1_000_000.0)
        result = gc_trace_dir(str(tmp_path), max_bytes=0)
        assert json.loads(json.dumps(result.to_dict())) \
            == result.to_dict()

    def test_counters(self, tmp_path, obs_on):
        _make_store(tmp_path, 8, atime=1_000_000.0)
        gc_trace_dir(str(tmp_path), max_bytes=0)
        counters = obs_on.snapshot()["counters"]
        assert counters["trace.gc_evicted"] == 1
        assert counters["trace.gc_freed_bytes"] > 0


class TestCLI:
    def test_trace_gc_command(self, tmp_path, capsys):
        from repro.cli import main
        cold = _make_store(tmp_path, 8, atime=1_000_000.0)
        _make_store(tmp_path, 12, atime=2_000_000.0)
        rc = main(["trace", "gc", "--trace-dir", str(tmp_path),
                   "--max-gb", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert not os.path.exists(cold.path)

    def test_trace_gc_protects_live_service_jobs(self, tmp_path, capsys):
        from repro.cli import main
        from repro.service.jobs import JobSpec, JobStore
        from repro.tools.atomicio import atomic_write_text
        import json as _json

        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        live = _make_store(trace_dir, 8, atime=1_000_000.0)
        dead = _make_store(trace_dir, 12, atime=2_000_000.0)
        state_dir = tmp_path / "svc"
        store = JobStore(str(state_dir))
        job = store.submit("t", JobSpec.from_dict(
            {"workload": "fig1", "use_trace_store": True}))
        store.mark_started(job.id)
        atomic_write_text(store.status_path(job.id), _json.dumps(
            {"phase": "analyze", "trace_path": live.path}))

        rc = main(["trace", "gc", "--trace-dir", str(trace_dir),
                   "--max-gb", "0", "--state-dir", str(state_dir)])
        assert rc == 0
        assert os.path.exists(live.path)
        assert not os.path.exists(dead.path)
