"""Distance engines (Fenwick, treap, numpy) against the LRU-stack oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fenwick import FenwickEngine
from repro.core.npengine import NumpyFenwickEngine
from repro.core.treap import TreapEngine

from tests.helpers import NaiveReuseDistance


def _drive(engine, addresses):
    """Feed an address stream through an engine; return distances."""
    table = {}
    clock = 0
    out = []
    for addr in addresses:
        clock += 1
        prev = table.get(addr)
        if prev is None:
            engine.first(clock)
            out.append(None)
        else:
            out.append(engine.reuse(prev, clock))
        table[addr] = clock
    return out


def _naive(addresses):
    oracle = NaiveReuseDistance()
    return [oracle.access(a) for a in addresses]


ENGINES = [FenwickEngine, TreapEngine, NumpyFenwickEngine]


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestEnginesBasic:
    def test_repeat_same_block(self, engine_cls):
        assert _drive(engine_cls(), [1, 1, 1]) == [None, 0, 0]

    def test_two_blocks_alternating(self, engine_cls):
        assert _drive(engine_cls(), [1, 2, 1, 2]) == [None, None, 1, 1]

    def test_classic_stack_example(self, engine_cls):
        # a b c b a: distance(b)=1, distance(a)=2
        assert _drive(engine_cls(), [1, 2, 3, 2, 1]) == [
            None, None, None, 1, 2]

    def test_streaming_never_reuses(self, engine_cls):
        assert _drive(engine_cls(), list(range(50))) == [None] * 50

    def test_active_block_count(self, engine_cls):
        engine = engine_cls()
        _drive(engine, [1, 2, 3, 1, 2])
        assert engine.active_blocks == 3


class TestFenwickGrowth:
    def test_growth_preserves_marks(self):
        engine = FenwickEngine(initial_capacity=8)
        # Push the clock far beyond the initial capacity.
        stream = [k % 5 for k in range(100)]
        assert _drive(engine, stream) == _naive(stream)

    def test_ensure_idempotent(self):
        engine = FenwickEngine(initial_capacity=8)
        engine.first(1)
        engine.ensure(1000)
        engine.ensure(1000)
        assert engine.reuse(1, 999) == 0


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30),
                min_size=1, max_size=120))
def test_fenwick_matches_naive(stream):
    assert _drive(FenwickEngine(initial_capacity=16), stream) == _naive(stream)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30),
                min_size=1, max_size=120))
def test_treap_matches_naive(stream):
    assert _drive(TreapEngine(), stream) == _naive(stream)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30),
                min_size=1, max_size=120))
def test_numpy_fenwick_matches_naive(stream):
    # Tiny capacity so the ndarray tree grows several times mid-stream.
    assert (_drive(NumpyFenwickEngine(initial_capacity=8), stream)
            == _naive(stream))


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=200),
                min_size=1, max_size=300))
def test_engines_agree(stream):
    reference = _drive(FenwickEngine(initial_capacity=4), stream)
    assert _drive(TreapEngine(), stream) == reference
    assert _drive(NumpyFenwickEngine(initial_capacity=4), stream) == reference


class TestNumpyFenwickGrowth:
    def test_growth_preserves_marks(self):
        engine = NumpyFenwickEngine(initial_capacity=8)
        stream = [k % 5 for k in range(100)]
        assert _drive(engine, stream) == _naive(stream)

    def test_ensure_idempotent(self):
        engine = NumpyFenwickEngine(initial_capacity=8)
        engine.first(1)
        engine.ensure(1000)
        engine.ensure(1000)
        assert engine.reuse(1, 999) == 0

    def test_midstream_ensure_matches_fenwick(self):
        # Pre-grow far past the clock in the middle of a stream: the bulk
        # and scalar trees must agree on every later distance.
        streams = ([3, 1, 4, 1, 5], [9, 2, 6, 5, 3, 5, 8, 9, 7, 9])
        np_eng = NumpyFenwickEngine(initial_capacity=8)
        fw_eng = FenwickEngine(initial_capacity=8)
        table = {}
        clock = 0
        for part in streams:
            for addr in part:
                clock += 1
                prev = table.get(addr)
                if prev is None:
                    np_eng.first(clock)
                    fw_eng.first(clock)
                else:
                    assert (np_eng.reuse(prev, clock)
                            == fw_eng.reuse(prev, clock))
                table[addr] = clock
            np_eng.ensure(clock + 500)
            fw_eng.ensure(clock + 500)
        assert np_eng.active_blocks == fw_eng.active_blocks

    def test_bulk_ops_match_scalar(self):
        import numpy as np

        engine = NumpyFenwickEngine(initial_capacity=8)
        for t in range(1, 40):
            engine.first(t)
        times = np.arange(1, 40, 3, dtype=np.int64)
        engine.bulk_add(times, -1)
        scalar = NumpyFenwickEngine(initial_capacity=8)
        for t in range(1, 40):
            scalar.first(t)
        for t in times:
            scalar._add(int(t), -1)
        queries = np.arange(1, 40, dtype=np.int64)
        expected = [scalar._prefix(int(t)) for t in queries]
        assert engine.bulk_prefix(queries).tolist() == expected


class TestTreapStructure:
    def test_keys_sorted_after_churn(self):
        engine = TreapEngine()
        _drive(engine, [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5])
        keys = engine.keys()
        assert keys == sorted(keys)

    def test_delete_missing_raises(self):
        engine = TreapEngine()
        engine.first(5)
        with pytest.raises(KeyError):
            engine._delete(7)
