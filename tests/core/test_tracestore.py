"""Unit tests for the spillable columnar trace store.

Writer spill bounds, digest stability across flush placement, the
on-disk format guards, slice geometry against the in-memory splitter,
dedup recording, and the ``trace.*`` observability counters.  Merged
byte-identity of spilled sharded analysis against the sequential
engines lives in ``tests/integration/test_shard_equivalence``.
"""

import json
import os

import pytest

from repro.apps.kernels import stream_triad
from repro.apps.sweep3d import SweepParams, build_original
from repro.core.shard import record_trace, split_trace
from repro.core.tracestore import (
    TRACESTORE_VERSION, StoredTrace, TraceStore, TraceStoreWriter,
    load_trace, record_spilled, replay_slice, split_stored_trace,
)


def _build():
    return build_original(SweepParams(n=6, mm=3, nm=2, noct=1))


class TestWriter:
    def test_roundtrip_meta(self, tmp_path):
        stored, stats = record_trace(_build(), spill=str(tmp_path / "t"))
        assert isinstance(stored, StoredTrace)
        assert stored.accesses == stats.accesses > 0
        assert stored.nops > 0
        assert len(stored.digest) == 64
        loaded = load_trace(stored.path)
        assert loaded == stored
        store = TraceStore(stored.path)
        assert store.ops.shape == (stored.nops, 4)

    def test_forced_spill_bounds_buffer(self, tmp_path):
        writer = TraceStoreWriter(str(tmp_path / "t"), spill_mb=0.001)
        record_trace(_build(), spill=writer)
        assert writer.flushes > 1
        assert writer.spilled_bytes > 0
        # the buffer never held the whole trace...
        assert writer.max_buffered < writer.spilled_bytes
        # ...and the high-water mark respects the bound up to one op's
        # worth of overshoot (the check runs after each append)
        assert writer.max_buffered < 2 * writer.spill_limit
        # everything buffered reached disk
        on_disk = sum(
            os.path.getsize(os.path.join(writer.path, f))
            for f in os.listdir(writer.path) if f != "meta.json")
        assert on_disk == writer.spilled_bytes

    def test_digest_independent_of_flush_boundaries(self, tmp_path):
        tight, _ = record_trace(_build(), spill=str(tmp_path / "a"),
                                spill_mb=0.001)
        loose, _ = record_trace(_build(), spill=str(tmp_path / "b"))
        assert tight.digest == loose.digest
        other, _ = record_trace(
            build_original(SweepParams(n=5, mm=3, nm=2, noct=1)),
            spill=str(tmp_path / "c"))
        assert other.digest != tight.digest

    def test_rows_stay_symbolic_on_disk(self, tmp_path):
        # the triad's affine loops must not expand to per-access records
        stored, stats = record_trace(stream_triad(512, 2),
                                     spill=str(tmp_path / "t"))
        store = TraceStore(stored.path)
        assert len(store.batch_addrs) < stats.accesses
        assert len(store.rows_bases) > 0

    def test_spill_mb_validation(self, tmp_path):
        with pytest.raises(ValueError):
            TraceStoreWriter(str(tmp_path / "t"), spill_mb=0)

    def test_finalize_twice_raises(self, tmp_path):
        writer = TraceStoreWriter(str(tmp_path / "t"))
        writer.finalize()
        with pytest.raises(RuntimeError):
            writer.finalize()

    def test_empty_trace(self, tmp_path):
        stored = TraceStoreWriter(str(tmp_path / "t")).finalize()
        assert stored.accesses == 0 and stored.nops == 0
        store = TraceStore(stored.path)
        assert store.ops.shape == (0, 4)
        assert len(split_stored_trace(store, 4)) == 1


class TestLoadGuards:
    def test_rejects_wrong_magic(self, tmp_path):
        d = tmp_path / "t"
        d.mkdir()
        (d / "meta.json").write_text(json.dumps({"magic": "nope"}))
        with pytest.raises(ValueError):
            load_trace(str(d))

    def test_rejects_version_mismatch(self, tmp_path):
        stored, _ = record_trace(_build(), spill=str(tmp_path / "t"))
        meta_path = os.path.join(stored.path, "meta.json")
        with open(meta_path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
        meta["version"] = TRACESTORE_VERSION + 1
        with open(meta_path, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
        with pytest.raises(ValueError):
            load_trace(stored.path)

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_trace(str(tmp_path / "absent"))


class TestSplitGeometry:
    @pytest.mark.parametrize("k", [1, 2, 5, 9])
    def test_matches_in_memory_splitter(self, tmp_path, k):
        mem, _ = record_trace(_build())
        stored, _ = record_trace(_build(), spill=str(tmp_path / "t"))
        ref = split_trace(mem, k)
        got = split_stored_trace(stored, k)
        assert [(sl.index, sl.start, sl.length, sl.seed_sids,
                 sl.seed_clocks) for sl in ref] == \
               [(sl.index, sl.start, sl.length, sl.seed_sids,
                 sl.seed_clocks) for sl in got]
        assert sum(sl.length for sl in got) == stored.accesses

    def test_split_trace_dispatches_on_stored_handles(self, tmp_path):
        stored, _ = record_trace(_build(), spill=str(tmp_path / "t"))
        slices = split_trace(stored, 3)
        assert all(sl.path == stored.path for sl in slices)

    def test_replay_reproduces_recorder_stream(self, tmp_path):
        mem, _ = record_trace(stream_triad(257, 3))
        stored, _ = record_trace(stream_triad(257, 3),
                                 spill=str(tmp_path / "t"),
                                 spill_mb=0.001)
        (ref,) = split_trace(mem, 1)
        (sl,) = split_stored_trace(stored, 1)

        class Collect:
            def __init__(self):
                self.ops = []

            def enter_scope(self, sid):
                self.ops.append(("enter", sid))

            def exit_scope(self, sid):
                self.ops.append(("exit", sid))

            def access_batch(self, rids, addrs, stores, period=0):
                self.ops.append(("batch", list(rids), list(addrs),
                                 [bool(s) for s in stores], period))

            def access_rows(self, rids, stores, bases, strides, m):
                self.ops.append(("rows", tuple(rids),
                                 tuple(bool(s) for s in stores),
                                 tuple(bases), tuple(strides), m))

        got = Collect()
        replay_slice(TraceStore(stored.path), sl, got)
        want = [("batch", list(op[1]), list(op[2]),
                 [bool(s) for s in op[3]], op[4]) if op[0] == "batch"
                else op for op in ref.ops]
        assert got.ops == want


class TestRecordSpilled:
    def test_digest_named_store_deduplicates(self, tmp_path):
        first, _ = record_spilled(_build(), str(tmp_path))
        second, _ = record_spilled(_build(), str(tmp_path))
        assert first.path == second.path
        assert os.path.basename(first.path) == first.digest[:16]
        assert os.listdir(str(tmp_path)) == [first.digest[:16]]

    def test_failed_recording_leaves_no_store(self, tmp_path):
        # not a Program: the executor blows up mid-recording, and the
        # partially written temp store must be removed
        with pytest.raises(AttributeError):
            record_spilled(object(), str(tmp_path))
        assert os.listdir(str(tmp_path)) == []


class TestObsCounters:
    def test_trace_counters_tick(self, obs_on, tmp_path):
        stored, _ = record_spilled(_build(), str(tmp_path),
                                   spill_mb=0.001)
        store = TraceStore(stored.path)
        for sl in split_stored_trace(store, 2):
            replay_slice(store, sl, _NullHandler())
        counters = obs_on.snapshot()["counters"]
        assert counters["trace.spill_bytes"] > 0
        assert counters["trace.mmap_opens"] >= 2
        assert counters["trace.read_mb"] > 0


class _NullHandler:
    def enter_scope(self, sid):
        pass

    def exit_scope(self, sid):
        pass

    def access_batch(self, rids, addrs, stores, period=0):
        pass

    def access_rows(self, rids, stores, bases, strides, m):
        pass
