"""Cache simulator vs a naive fully-associative LRU oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import SetAssocCache

from tests.helpers import NaiveLRUCache


class TestBasics:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            SetAssocCache(100, 64, 2)       # capacity not multiple
        with pytest.raises(ValueError):
            SetAssocCache(4096, 64, 7)      # blocks not multiple of ways
        with pytest.raises(ValueError):
            SetAssocCache(4096, 48, 4)      # block size not power of two

    def test_cold_miss_then_hit(self):
        c = SetAssocCache(4096, 64, 8)
        assert c.access(0) is False
        assert c.access(8) is True          # same line
        assert c.misses == 1 and c.hits == 1

    def test_eviction_lru_order(self):
        c = SetAssocCache(2 * 64, 64, 2)    # 1 set, 2 ways
        c.access_block(0)
        c.access_block(1)
        c.access_block(0)                   # 0 now MRU
        c.access_block(2)                   # evicts 1
        assert c.access_block(0) is True
        assert c.access_block(1) is False

    def test_set_isolation(self):
        c = SetAssocCache(4 * 64, 64, 2)    # 2 sets x 2 ways
        # blocks 0,2,4 map to set 0; block 1 to set 1
        c.access_block(0)
        c.access_block(2)
        c.access_block(1)
        c.access_block(4)                   # evicts 0 from set 0
        assert c.access_block(1) is True    # set 1 untouched
        assert c.access_block(0) is False

    def test_miss_rate_and_reset(self):
        c = SetAssocCache(4096, 64, 8)
        for addr in range(0, 640, 64):
            c.access(addr)
        assert c.miss_rate == 1.0
        c.reset()
        assert c.accesses == 0
        assert c.resident_blocks() == 0

    def test_miss_rate_empty(self):
        assert SetAssocCache(4096, 64, 8).miss_rate == 0.0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=40),
                min_size=1, max_size=300))
def test_fully_associative_matches_naive_lru(blocks):
    cache = SetAssocCache(16 * 64, 64, 16)   # fully associative, 16 blocks
    naive = NaiveLRUCache(16, 64)
    for b in blocks:
        got = cache.access_block(b)
        want = naive.access(b * 64)
        assert got == want
    assert cache.misses == naive.misses


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=100),
                min_size=1, max_size=200))
def test_set_assoc_equals_per_set_lru(blocks):
    """An S-set A-way cache is S independent A-way FA caches."""
    sets, ways = 4, 3
    cache = SetAssocCache(sets * ways * 64, 64, ways)
    naives = [NaiveLRUCache(ways, 64) for _ in range(sets)]
    for b in blocks:
        got = cache.access_block(b)
        want = naives[b % sets].access(b * 64)
        assert got == want
