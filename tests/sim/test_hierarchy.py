"""Multi-level hierarchy simulation modes and timing model."""

import pytest

from repro.lang import run_program
from repro.model import MachineConfig
from repro.sim import HierarchySim, TimingInputs, TimingModel

from tests.helpers import two_array_kernel

CFG = MachineConfig.scaled_itanium2()


class TestHierarchy:
    def test_standalone_levels_independent(self):
        sim = HierarchySim(CFG)
        run_program(two_array_kernel(40, 40, True), sim)
        totals = sim.totals()
        assert totals["L2"] >= totals["L3"]      # L3 is bigger
        assert totals["TLB"] > 0

    def test_filtered_mode_l3_sees_fewer(self):
        sim_s = HierarchySim(CFG, mode="standalone")
        sim_f = HierarchySim(CFG, mode="filtered")
        run_program(two_array_kernel(40, 40, True), sim_s)
        run_program(two_array_kernel(40, 40, True), sim_f)
        # In filtered mode L2 hits never reach L3 — never more misses.
        assert sim_f.totals()["L3"] <= sim_s.totals()["L3"] + 1
        assert sim_f.totals()["L2"] == sim_s.totals()["L2"]

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            HierarchySim(CFG, mode="bogus")

    def test_per_ref_tracking(self):
        sim = HierarchySim(CFG, track_refs=True)
        prog = two_array_kernel(40, 40, True)
        run_program(prog, sim)
        per_ref = sim.misses_by_ref("L2")
        assert sum(per_ref.values()) == sim.totals()["L2"]

    def test_per_ref_requires_flag(self):
        sim = HierarchySim(CFG)
        with pytest.raises(RuntimeError):
            sim.misses_by_ref("L2")

    def test_misses_lookup_unknown_level(self):
        with pytest.raises(KeyError):
            HierarchySim(CFG).misses("L7")


class TestTimingModel:
    def test_non_stall_formula(self):
        model = TimingModel(CFG)
        breakdown = model.cycles(TimingInputs(instructions=4000, misses={}))
        assert breakdown.non_stall == pytest.approx(
            4000 * CFG.base_cpi / CFG.issue_width)
        assert breakdown.memory_stall == 0
        assert breakdown.total == breakdown.non_stall

    def test_memory_stall_per_level(self):
        model = TimingModel(CFG)
        breakdown = model.cycles(TimingInputs(
            instructions=0, misses={"L2": 10, "L3": 2, "TLB": 4}))
        expected = (10 * CFG.level("L2").miss_latency
                    + 2 * CFG.level("L3").miss_latency
                    + 4 * CFG.level("TLB").miss_latency)
        assert breakdown.memory_stall == expected

    def test_schedule_factor_scales_non_stall(self):
        model = TimingModel(CFG)
        base = model.cycles(TimingInputs(instructions=1000, misses={}))
        better = model.cycles(TimingInputs(instructions=1000, misses={},
                                           schedule_factor=0.5))
        assert better.non_stall == pytest.approx(base.non_stall / 2)

    def test_icache_penalty_only_when_overflowing(self):
        model = TimingModel(CFG)
        small = model.cycles(TimingInputs(
            instructions=100, misses={},
            loop_body_instructions=10, insts_in_big_loop=100))
        assert small.icache_stall == 0
        big = model.cycles(TimingInputs(
            instructions=100, misses={},
            loop_body_instructions=100_000, insts_in_big_loop=100))
        assert big.icache_stall > 0
        assert big.icache_stall <= 100 * CFG.icache_overflow_penalty
