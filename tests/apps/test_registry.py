"""The workload registry: one canonical name -> builder mapping."""

import pytest

from repro.apps.registry import (
    WORKLOADS, build_workload, workload_names, workload_params,
)


class TestRegistry:
    def test_names_match_descriptions(self):
        assert set(workload_names()) == set(WORKLOADS)
        assert all(WORKLOADS[name] for name in workload_names())

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_builds(self, name):
        program = build_workload(name)
        assert program.name
        assert program.refs

    def test_params_are_copies(self):
        params = workload_params("sweep3d")
        params["mesh"] = 999
        assert workload_params("sweep3d")["mesh"] != 999

    def test_param_override(self):
        small = build_workload("fig1", n=8, m=8)
        big = build_workload("fig1", n=32, m=32)
        assert small.name == big.name
        # bigger arrays -> different layouts
        assert small is not big

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            workload_params("quantum")
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("quantum")

    def test_unknown_param(self):
        with pytest.raises(ValueError, match="does not accept"):
            build_workload("sweep3d", warp=9)

    def test_cli_build_delegates_to_registry(self):
        import argparse
        from repro.cli import _build
        args = argparse.Namespace(mesh=6, micell=4)
        assert _build("sweep3d", args).name.startswith("sweep3d")
        assert _build("gtc", args).name.startswith("gtc")
        with pytest.raises(SystemExit):
            _build("quantum", args)
