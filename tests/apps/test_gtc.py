"""GTC model: variants, index tables, layout transforms."""

import pytest

from repro.apps.gtc import (
    GTCArrays, GTCParams, GTCVariant, NPT, VARIANTS, ZION_FIELDS, build_gtc,
    variant_by_name,
)
from repro.lang import run_program

SMALL = GTCParams(mpsi=4, mtheta=6, micell=2, mzeta=2, timesteps=1)


class TestParams:
    def test_derived_sizes(self):
        p = GTCParams(mpsi=4, mtheta=6, micell=3)
        assert p.mgrid == 24
        assert p.mi == 72

    def test_with_micell(self):
        p = GTCParams(micell=4).with_micell(9)
        assert p.micell == 9


class TestVariants:
    def test_seven_cumulative_variants(self):
        assert len(VARIANTS) == 7
        assert VARIANTS[0].name == "gtc_original"
        # cumulative: each variant keeps all earlier flags
        flags = ["zion_soa", "fuse_chargei", "spcpft_unroll",
                 "poisson_linear", "smooth_interchange", "pushi_tiled"]
        for earlier, later in zip(VARIANTS, VARIANTS[1:]):
            for flag in flags:
                if getattr(earlier, flag):
                    assert getattr(later, flag)

    def test_lookup_by_name(self):
        assert variant_by_name("+smooth LI").smooth_interchange
        with pytest.raises(KeyError):
            variant_by_name("nope")

    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
    def test_every_variant_runs(self, variant):
        stats = run_program(build_gtc(variant, SMALL))
        assert stats.accesses > 0


class TestIndexTables:
    def test_jtion_values_in_grid_range(self):
        ar = GTCArrays(SMALL, VARIANTS[0])
        assert all(1 <= v <= SMALL.mgrid for v in ar.jtion.values)

    def test_jtion_mostly_local(self):
        """Particles scatter near their home cell."""
        p = GTCParams(mpsi=8, mtheta=8, micell=4)
        ar = GTCArrays(p, VARIANTS[0])
        close = 0
        for m in range(p.mi):
            home = m // p.micell
            cell = int(ar.jtion.values[NPT * m]) - 1
            if min((cell - home) % p.mgrid, (home - cell) % p.mgrid) <= 2:
                close += 1
        assert close / p.mi > 0.9

    def test_nring_within_bounds(self):
        ar = GTCArrays(SMALL, VARIANTS[0])
        assert all(4 <= v <= SMALL.nring for v in ar.nringv.values)

    def test_linearized_tables_consistent(self):
        variant = variant_by_name("+poisson transforms")
        ar = GTCArrays(SMALL, variant)
        starts = [int(v) for v in ar.istart.values]
        assert starts == sorted(starts)
        nnz = starts[-1] - 1
        assert nnz == int(ar.nringv.values.sum())
        assert ar.ring_lin.nelems() == nnz
        assert all(1 <= v <= SMALL.mgrid for v in ar.indexp_lin.values)

    def test_deterministic_across_builds(self):
        a = GTCArrays(SMALL, VARIANTS[0])
        b = GTCArrays(SMALL, VARIANTS[0])
        assert list(a.jtion.values) == list(b.jtion.values)


class TestLayouts:
    def test_aos_zion_is_record_array(self):
        ar = GTCArrays(SMALL, VARIANTS[0])
        assert ar.zion.fields == ZION_FIELDS
        assert ar.zion.strides == (len(ZION_FIELDS) * 8,)

    def test_alias_shares_storage(self):
        ar = GTCArrays(SMALL, VARIANTS[0])
        assert ar.particle_array.base == ar.zion.base
        assert ar.particle_array.name == "particle_array"

    def test_soa_zion_is_field_vectors(self):
        ar = GTCArrays(SMALL, variant_by_name("+zion transpose"))
        assert set(ar.zion) == set(ZION_FIELDS)
        assert ar.zion["psi"].strides == (8,)
        assert ar.particle_array is None

    def test_soa_and_aos_same_access_counts(self):
        aos = run_program(build_gtc(VARIANTS[0], SMALL))
        soa = run_program(build_gtc(variant_by_name("+zion transpose"),
                                    SMALL))
        assert aos.accesses == soa.accesses
        assert aos.ops == soa.ops


class TestTiledPushi:
    def test_tiled_same_particle_work(self):
        """Strip-mining must not change which particles are processed."""
        from repro.lang import TraceRecorder
        counts = {}
        for name in ("+smooth LI", "+pushi tiling/fusion"):
            prog = build_gtc(variant_by_name(name), SMALL)
            rec = TraceRecorder()
            run_program(prog, rec)
            wpi = prog.layout.get("wpi")
            stores = sorted(
                e[2] - wpi.base for e in rec.accesses()
                if e[3] and wpi.base <= e[2] < wpi.base + wpi.size)
            counts[name] = stores
        assert counts["+smooth LI"] == counts["+pushi tiling/fusion"]

    def test_stripe_loop_present(self):
        prog = build_gtc(variant_by_name("+pushi tiling/fusion"), SMALL)
        assert any(s.name == "pushi_stripe" for s in prog.scopes)


class TestScopeStructure:
    def test_paper_routines_present(self):
        prog = build_gtc(None, SMALL)
        assert set(prog.routines) == {
            "main", "chargei", "poisson", "spcpft", "smooth", "field",
            "gcmotion", "pushi",
        }

    def test_gcmotion_is_c(self):
        prog = build_gtc(None, SMALL)
        assert prog.routines["gcmotion"].language == "c"

    def test_time_loops_flagged(self):
        prog = build_gtc(None, SMALL)
        assert prog.scope_named("main_time").is_time_loop
        assert prog.scope_named("main_rk").is_time_loop
