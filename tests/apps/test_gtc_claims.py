"""GTC-specific paper claims that deserve their own tests.

Including the *negative* result the paper is explicit about: the static
fragmentation analysis cannot detect the poisson ring arrays' waste,
because the unused elements sit contiguously at the end of each column
("Our static analysis for cache fragmentation cannot detect such cases at
this time because the elements are accessed with stride one").
"""

import pytest

from repro.apps.gtc import GTCParams, build_gtc, variant_by_name
from repro.lang import run_program
from repro.static import FragmentationAnalysis, StaticAnalysis
from repro.tools import AnalysisSession

SMALL = GTCParams(mpsi=4, mtheta=6, micell=2, mzeta=2, timesteps=1)


class TestPaperNegativeResults:
    def test_ring_fragmentation_invisible_to_static_analysis(self):
        """Partially-used stride-1 columns: f = 0, as the paper admits."""
        prog = build_gtc(None, SMALL)
        stats = run_program(prog)
        frag = FragmentationAnalysis(StaticAnalysis(prog), stats)
        factors = frag.by_array()
        assert factors.get("ring", 0.0) == pytest.approx(0.0)

    def test_poisson_recurrence_carried_by_solver_loop(self):
        """The solver's temporal reuse is carried by its iterative loop —
        the misses the paper says "cannot be eliminated by loop
        interchange or loop tiling due to a recurrence"."""
        session = AnalysisSession(build_gtc(None, GTCParams(micell=4,
                                                            timesteps=1)))
        session.run()
        prog = session.program
        solver = prog.scope_named("poisson_iter").sid
        assert session.carried.carried["L2"].get(solver, 0.0) > 0


class TestChargeiScatter:
    def test_scatter_is_indirect(self):
        prog = build_gtc(None, SMALL)
        static = StaticAnalysis(prog)
        rho_stores = [r.rid for r in prog.refs
                      if r.array == "rho" and r.is_store
                      and "chargei" in r.loc]
        assert rho_stores
        loop_sid = prog.scope_named("chargei_loop2").sid
        for rid in rho_stores:
            stride = static.stride(rid, loop_sid)
            assert stride is not None and stride.indirect

    def test_fused_chargei_removes_interloop_reuse(self):
        """After fusion there is no jtion/wtion reuse carried by the
        chargei routine scope (the pattern the paper eliminated)."""
        def interloop_misses(variant_name):
            variant = (None if variant_name is None
                       else variant_by_name(variant_name))
            params = GTCParams(micell=6, timesteps=1)
            session = AnalysisSession(build_gtc(variant, params))
            session.run()
            prog = session.program
            chargei = prog.scope_named("chargei").sid
            lp = session.prediction.levels["L3"]
            total = 0.0
            for (rid, src, carry), misses in lp.pattern_misses.items():
                ref = prog.ref(rid)
                if carry == chargei and ref.array in ("jtion", "wtion"):
                    total += misses
            return total

        before = interloop_misses(None)
        after = interloop_misses("+chargei fusion")
        assert before > 0
        assert after < 0.05 * before


class TestSmoothInterchange:
    def test_interchange_moves_tlb_carrier_inward(self):
        def smooth_tlb(variant_name):
            variant = (None if variant_name is None
                       else variant_by_name(variant_name))
            params = GTCParams(micell=2, timesteps=1)
            session = AnalysisSession(build_gtc(variant, params))
            session.run()
            prog = session.program
            carried = session.carried.carried["TLB"]
            return sum(v for sid, v in carried.items()
                       if prog.scope(sid).routine == "smooth")

        before = smooth_tlb(None)
        after = smooth_tlb("+smooth LI")
        assert after < 0.25 * before
