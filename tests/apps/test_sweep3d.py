"""Sweep3D model: structure, diagonal tables, and variant equivalence."""

import pytest

from repro.apps.sweep3d import (
    SweepArrays, SweepParams, build_blocked, build_diag2_tables,
    build_diag3_tables, build_original, build_variant, VARIANTS,
)
from repro.lang import run_program


class TestDiagonalTables:
    def test_diag3_covers_every_cell_once(self):
        p = SweepParams(n=4, mm=3, noct=1)
        ar = SweepArrays(p)
        build_diag3_tables(ar, p)
        cells = set()
        n_cells = p.n * p.n * p.mm
        for c in range(n_cells):
            cells.add((int(ar.diag_j.values[c]), int(ar.diag_k.values[c]),
                       int(ar.diag_mi.values[c])))
        assert len(cells) == n_cells
        assert all(1 <= j <= p.n and 1 <= k <= p.n and 1 <= mi <= p.mm
                   for j, k, mi in cells)

    def test_diag3_wavefront_order(self):
        """Within one octant, j+k+mi is non-decreasing along the table."""
        p = SweepParams(n=4, mm=3, noct=1)
        ar = SweepArrays(p)
        build_diag3_tables(ar, p)
        sums = [int(ar.diag_j.values[c] + ar.diag_k.values[c]
                    + ar.diag_mi.values[c])
                for c in range(p.n * p.n * p.mm)]
        assert sums == sorted(sums)

    def test_diag3_start_offsets_monotone(self):
        p = SweepParams(n=4, mm=3, noct=2)
        ar = SweepArrays(p)
        build_diag3_tables(ar, p)
        starts = [int(v) for v in ar.dstart.values]
        assert starts == sorted(starts)
        assert starts[-1] == 2 * p.n * p.n * p.mm + 1

    def test_diag2_covers_jk_plane(self):
        p = SweepParams(n=5, noct=1)
        ar = SweepArrays(p)
        build_diag2_tables(ar, p)
        cells = {(int(ar.diag_j.values[c]), int(ar.diag_k.values[c]))
                 for c in range(p.n * p.n)}
        assert len(cells) == p.n * p.n

    def test_octant_mirroring(self):
        """Octant 2 sweeps from the opposite corner."""
        p = SweepParams(n=4, mm=2, noct=2)
        ar = SweepArrays(p)
        build_diag3_tables(ar, p)
        first_oct1 = (int(ar.diag_j.values[0]), int(ar.diag_k.values[0]))
        base = p.n * p.n * p.mm
        first_oct2 = (int(ar.diag_j.values[base]),
                      int(ar.diag_k.values[base]))
        assert first_oct1 == (1, 1)
        assert first_oct2 == (p.n, p.n)


class TestVariants:
    @pytest.mark.parametrize("name", VARIANTS)
    def test_builds_and_runs(self, name):
        prog = build_variant(name, SweepParams(n=4, mm=6, nm=2, noct=1))
        stats = run_program(prog)
        assert stats.accesses > 0

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_variant("block5x")

    def test_block_must_divide_mm(self):
        with pytest.raises(ValueError):
            build_blocked(SweepParams(n=4, mm=6), block=4)

    def test_variants_do_same_cell_work(self):
        """Blocking reorders the sweep but performs the same i-line work."""
        p = SweepParams(n=4, mm=2, nm=2, noct=1)
        flux_stores = {}
        for name in ("original", "block2"):
            prog = build_variant(name, p)
            from repro.lang import TraceRecorder
            rec = TraceRecorder()
            run_program(prog, rec)
            flux = prog.layout.get("flux")
            addrs = sorted(
                e[2] for e in rec.accesses()
                if e[3] and flux.base <= e[2] < flux.base + flux.size
            )
            flux_stores[name] = addrs
        assert flux_stores["original"] == flux_stores["block2"]

    def test_dimic_changes_src_layout(self):
        p = SweepParams(n=4, mm=2, nm=2, noct=1)
        plain = build_variant("block2", p)
        dimic = build_blocked(p, block=2, dim_ic=True)
        assert plain.layout.get("src").shape == (4, 4, 4, 2)
        assert dimic.layout.get("src").shape == (4, 2, 4, 4)

    def test_too_many_octants_rejected(self):
        with pytest.raises(ValueError):
            SweepParams(n=4, noct=9)


class TestScopeStructure:
    def test_original_has_paper_loops(self):
        prog = build_original(SweepParams(n=4, mm=2, nm=2, noct=1))
        names = {s.name for s in prog.scopes}
        for expected in ("iq", "mo", "kk", "idiag", "jkm", "timestep",
                         "src_loop", "flux_loop", "sigt_loop", "face_loop"):
            assert expected in names

    def test_blocked_has_mi_block_loop(self):
        prog = build_blocked(SweepParams(n=4, mm=2, nm=2, noct=1), block=2)
        names = {s.name for s in prog.scopes}
        assert "mi_block" in names and "mib" in names

    def test_time_loop_flag(self):
        prog = build_original(SweepParams(n=4, mm=2, nm=2, noct=1))
        assert prog.scope_named("timestep").is_time_loop


class TestKPlanePipelining:
    """Fig 3's kk loop: pipelined k-plane blocks."""

    def _flux_stores(self, kb):
        from repro.lang import TraceRecorder
        p = SweepParams(n=6, mm=4, nm=2, noct=1, kb=kb)
        prog = build_original(p)
        rec = TraceRecorder()
        run_program(prog, rec)
        flux = prog.layout.get("flux")
        return sorted(e[2] - flux.base for e in rec.accesses()
                      if e[3] and flux.base <= e[2] < flux.base + flux.size)

    def test_same_work_any_kb(self):
        assert self._flux_stores(1) == self._flux_stores(2) \
            == self._flux_stores(3)

    def test_kb_must_divide_mesh(self):
        with pytest.raises(ValueError, match="must divide"):
            SweepParams(n=6, kb=4)

    def test_ndiag_accounts_for_block_height(self):
        p = SweepParams(n=8, mm=4, kb=2)
        assert p.nk == 4
        assert p.ndiag3 == 8 + 4 + 4 - 2

    def test_kk_carries_misses_when_pipelined(self):
        from repro.tools import AnalysisSession
        session = AnalysisSession(build_original(
            SweepParams(n=8, mm=6, nm=3, noct=1, kb=2)))
        session.run()
        prog = session.program
        kk = prog.scope_named("kk").sid
        assert session.carried.fraction("L2", kk) > 0.02

    def test_blocked_variant_requires_kb1(self):
        with pytest.raises(ValueError, match="k-block"):
            build_blocked(SweepParams(n=6, mm=6, kb=2), block=6)
