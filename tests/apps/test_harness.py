"""The measurement harness (simulator + timing: the 'hardware counters')."""

import pytest

from repro.apps.harness import (
    dynamic_instructions, measure, static_instructions,
)
from repro.apps.kernels import fig1_interchange, stream_triad
from repro.lang import run_program
from repro.model import MachineConfig


class TestMeasure:
    def test_result_fields(self):
        result = measure(stream_triad(512, 1), name="triad")
        assert result.name == "triad"
        assert set(result.misses) == {"L2", "L3", "TLB"}
        assert result.total_cycles > 0
        assert result.stats.accesses == 3 * 512

    def test_misses_per_unit(self):
        result = measure(stream_triad(512, 1))
        per = result.misses_per(512.0)
        assert per["L2"] == pytest.approx(result.misses["L2"] / 512.0)

    def test_schedule_factor_scales_non_stall(self):
        base = measure(stream_triad(512, 1))
        better = measure(stream_triad(512, 1), schedule_factor=0.5)
        assert better.cycles.non_stall == pytest.approx(
            base.cycles.non_stall / 2)
        assert better.misses == base.misses

    def test_custom_config(self):
        tiny = MachineConfig(
            name="tiny",
            levels=(MachineConfig.scaled_itanium2().levels[0],),
        )
        result = measure(stream_triad(512, 1), config=tiny)
        assert set(result.misses) == {"L2"}

    def test_param_override(self):
        from repro.lang import MemoryLayout, Var, load, loop, program, routine, stmt
        lay = MemoryLayout()
        a = lay.array("A", 64)
        prog = program("p", lay, [routine("main", loop(
            "i", 1, "N", stmt(load(a, Var("i")))))], params={"N": 8})
        result = measure(prog, N=32)
        assert result.stats.accesses == 32


class TestInstructionCounting:
    def test_static_instructions_positive(self):
        prog = fig1_interchange(8, 8)
        count = static_instructions(prog, ["main"])
        assert count > 0

    def test_dynamic_instructions_partition(self):
        from repro.apps.gtc import GTCParams, build_gtc
        params = GTCParams(mpsi=4, mtheta=6, micell=2, mzeta=2, timesteps=1)
        prog = build_gtc(None, params)
        stats = run_program(prog)
        total = sum(
            dynamic_instructions(stats, prog, [name])
            for name in prog.routines
        )
        assert total == sum(stats.scope_insts.values())
        pushi = dynamic_instructions(stats, prog, ["pushi", "gcmotion"])
        assert 0 < pushi < total

    def test_fused_routines_charge_icache(self):
        from repro.apps.gtc import GTCParams, build_gtc, variant_by_name
        params = GTCParams(mpsi=4, mtheta=6, micell=4, mzeta=2, timesteps=1)
        variant = variant_by_name("+pushi tiling/fusion")
        plain = measure(build_gtc(variant, params))
        fused = measure(build_gtc(variant, params),
                        fused_routines=("pushi", "gcmotion"))
        assert plain.cycles.icache_stall == 0
        assert fused.cycles.icache_stall > 0
        assert fused.misses == plain.misses
