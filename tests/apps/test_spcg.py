"""Sparse CG app: CSR structure, orderings, irregular-reuse detection."""

import pytest

from repro.apps.harness import measure
from repro.apps.spcg import (
    ORDERINGS, _grid_matrix, _shuffle_permutation, build_cg,
    first_touch_permutation,
)
from repro.lang import run_program
from repro.tools import AnalysisSession, IRREGULAR
from repro.tools.report import irregular_total


class TestMatrixConstruction:
    def test_csr_wellformed(self):
        rowstart, colidx = _grid_matrix(6)
        n = 36
        assert len(rowstart) == n + 1
        assert rowstart[0] == 1
        assert rowstart[-1] == len(colidx) + 1
        assert all(1 <= c <= n for c in colidx)

    def test_five_point_degree(self):
        rowstart, colidx = _grid_matrix(6)
        degrees = [rowstart[i + 1] - rowstart[i] for i in range(36)]
        # corner 3, edge 4, interior 5 (incl. diagonal)
        assert min(degrees) == 3
        assert max(degrees) == 5

    def test_symmetric_structure(self):
        rowstart, colidx = _grid_matrix(5)
        entries = set()
        for row in range(25):
            for pos in range(rowstart[row] - 1, rowstart[row + 1] - 1):
                entries.add((row + 1, colidx[pos]))
        assert all((c, r) in entries for r, c in entries)

    def test_shuffle_is_permutation(self):
        perm = _shuffle_permutation(100, seed=42)
        assert sorted(perm) == list(range(100))

    def test_first_touch_is_permutation(self):
        rowstart, colidx = _grid_matrix(8)
        perm = first_touch_permutation(rowstart, colidx)
        assert sorted(perm) == list(range(64))

    def test_first_touch_on_natural_is_near_identity(self):
        """A well-ordered matrix is (almost) a fixed point."""
        rowstart, colidx = _grid_matrix(8)
        perm = first_touch_permutation(rowstart, colidx)
        displacement = sum(abs(new - old) for old, new in enumerate(perm))
        assert displacement / len(perm) < 8  # within a grid row on average


class TestKernel:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_builds_and_runs(self, ordering):
        stats = run_program(build_cg(grid=8, iterations=2,
                                     ordering=ordering))
        assert stats.accesses > 0

    def test_bad_ordering_rejected(self):
        with pytest.raises(ValueError):
            build_cg(ordering="chaos")

    def test_same_work_every_ordering(self):
        counts = {o: run_program(build_cg(grid=8, ordering=o)).accesses
                  for o in ORDERINGS}
        assert len(set(counts.values())) == 1

    def test_deterministic(self):
        from tests.helpers import collect_trace
        a = collect_trace(build_cg(grid=6, iterations=1))
        b = collect_trace(build_cg(grid=6, iterations=1))
        assert a == b


class TestReorderingStory:
    """Table I row 2 on a realistic workload."""

    def test_shuffled_worse_than_natural(self):
        shuffled = measure(build_cg(grid=32, ordering="shuffled"))
        natural = measure(build_cg(grid=32, ordering="natural"))
        assert shuffled.misses["L2"] > 1.5 * natural.misses["L2"]

    def test_first_touch_recovers_locality(self):
        shuffled = measure(build_cg(grid=32, ordering="shuffled"))
        fixed = measure(build_cg(grid=32, ordering="first-touch"))
        assert fixed.misses["L2"] < 0.85 * shuffled.misses["L2"]
        assert fixed.total_cycles < shuffled.total_cycles

    def test_tool_flags_irregular_reuse(self):
        session = AnalysisSession(build_cg(grid=24, ordering="shuffled"))
        session.run()
        total = session.prediction.levels["L2"].total
        irregular = irregular_total(session.prediction, session.static,
                                    "L2")
        assert irregular > 0.2 * total
        scenarios = {r.scenario
                     for r in session.recommendations("L2", top_n=10)}
        assert IRREGULAR in scenarios

    def test_gather_indirect_wrt_both_loops(self):
        """The x-gather's subscript is loaded per nonzero, and the inner
        loop's bounds are loaded per row: indirect w.r.t. both loops."""
        prog = build_cg(grid=8, iterations=1)
        from repro.static import StaticAnalysis
        static = StaticAnalysis(prog)
        gather = next(r.rid for r in prog.refs
                      if r.array == "p" and r.loc == "spmv.f:15")
        nz_loop = prog.scope_named("spmv_nz").sid
        row_loop = prog.scope_named("spmv_row").sid
        assert static.stride(gather, nz_loop).indirect
        assert static.stride(gather, row_loop).indirect
