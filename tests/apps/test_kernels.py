"""Demo kernels behave as their docstrings claim."""

import pytest

from repro.apps.kernels import (
    blocked_matmul, fig1_interchange, fig2_fragmentation, irregular_gather,
    stencil5, stream_triad,
)
from repro.lang import run_program
from repro.model import MachineConfig
from repro.sim import HierarchySim

CFG = MachineConfig.scaled_itanium2()


def _misses(prog, level="L2"):
    sim = HierarchySim(CFG)
    run_program(prog, sim)
    return sim.totals()[level]


class TestFig1:
    def test_interchange_reduces_misses(self):
        bad = _misses(fig1_interchange(64, 64))
        good = _misses(fig1_interchange(64, 64, interchanged=True))
        assert good < bad / 3

    def test_same_access_count(self):
        a = run_program(fig1_interchange(32, 32)).accesses
        b = run_program(fig1_interchange(32, 32, interchanged=True)).accesses
        assert a == b == 32 * 32 * 3


class TestFig2:
    def test_runs_and_counts(self):
        stats = run_program(fig2_fragmentation(64, 16))
        assert stats.accesses == 16 * 16 * 8  # 16 strided iters x 2 stmts x 4


class TestTriad:
    def test_reuse_only_across_timesteps(self):
        one = _misses(stream_triad(4096, 1), "L3")
        two = _misses(stream_triad(4096, 2), "L3")
        # second timestep re-misses every line: misses double
        assert two == pytest.approx(2 * one, rel=0.01)


class TestGather:
    def test_deterministic(self):
        a = irregular_gather(512, 1024, seed=7)
        b = irregular_gather(512, 1024, seed=7)
        from tests.helpers import collect_trace
        assert collect_trace(a) == collect_trace(b)

    def test_seed_changes_pattern(self):
        from tests.helpers import collect_trace
        a = collect_trace(irregular_gather(512, 1024, seed=7))
        b = collect_trace(irregular_gather(512, 1024, seed=8))
        assert a != b


class TestMatmul:
    def test_blocking_reduces_misses(self):
        plain = _misses(blocked_matmul(40), "L2")
        blocked = _misses(blocked_matmul(40, block=8), "L2")
        assert blocked < plain

    def test_same_flops(self):
        plain = run_program(blocked_matmul(24))
        blocked = run_program(blocked_matmul(24, block=8))
        assert plain.ops == blocked.ops


class TestStencil:
    def test_two_phase_structure(self):
        prog = stencil5(24, 1)
        names = {s.name for s in prog.scopes}
        assert {"I", "J", "I2", "J2", "TIME"} <= names
