"""Trace persistence: record, save, replay."""

import pytest

from repro.core import ReuseAnalyzer
from repro.lang import TraceRecorder, run_program
from repro.lang.trace import TraceWriter, record, replay
from repro.sim import HierarchySim
from repro.model import MachineConfig

from tests.helpers import two_array_kernel

CFG = MachineConfig.scaled_itanium2()


class TestRoundTrip:
    def test_replay_reproduces_events(self, tmp_path):
        prog = two_array_kernel(8, 8)
        path = str(tmp_path / "trace.npz")
        count = record(prog, path)
        assert count > 0
        recorded = TraceRecorder()
        assert replay(path, recorded) == count
        live = TraceRecorder()
        run_program(two_array_kernel(8, 8), live)
        assert recorded.events == live.events

    def test_replayed_analysis_equals_online(self, tmp_path):
        prog = two_array_kernel(12, 12, transposed_b=True)
        path = str(tmp_path / "trace.npz")
        record(prog, path)
        online = ReuseAnalyzer(CFG.granularities())
        run_program(two_array_kernel(12, 12, transposed_b=True), online)
        offline = ReuseAnalyzer(CFG.granularities())
        replay(path, offline)
        for g_on, g_off in zip(online.grans, offline.grans):
            assert g_on.db.raw == g_off.db.raw
            assert g_on.db.cold == g_off.db.cold

    def test_replay_into_simulator(self, tmp_path):
        prog = two_array_kernel(12, 12, transposed_b=True)
        path = str(tmp_path / "trace.npz")
        record(prog, path)
        live = HierarchySim(CFG)
        run_program(two_array_kernel(12, 12, transposed_b=True), live)
        replayed = HierarchySim(CFG)
        replay(path, replayed)
        assert live.totals() == replayed.totals()

    def test_replay_fanout(self, tmp_path):
        path = str(tmp_path / "trace.npz")
        record(two_array_kernel(6, 6), path)
        r1, r2 = TraceRecorder(), TraceRecorder()
        replay(path, r1, r2)
        assert r1.events == r2.events

    def test_program_name_check(self, tmp_path):
        path = str(tmp_path / "trace.npz")
        record(two_array_kernel(4, 4), path)
        replay(path, TraceRecorder(), expect_program="two_array")
        with pytest.raises(ValueError, match="recorded from"):
            replay(path, TraceRecorder(), expect_program="other")

    def test_writer_len(self):
        writer = TraceWriter("x")
        writer.enter_scope(0)
        writer.access(1, 64, True)
        writer.exit_scope(0)
        assert len(writer) == 3
