"""Tests for the data-layout substrate."""

import pytest

from repro.lang.memory import (
    DOUBLE, DataObject, MemoryLayout, SymbolTable, column_major_strides,
    row_major_strides,
)


class TestStrides:
    def test_column_major_first_dim_contiguous(self):
        assert column_major_strides((4, 3, 2)) == (1, 4, 12)

    def test_row_major_last_dim_contiguous(self):
        assert row_major_strides((4, 3, 2)) == (6, 2, 1)

    def test_1d(self):
        assert column_major_strides((7,)) == (1,)
        assert row_major_strides((7,)) == (1,)


class TestDataObject:
    def test_fortran_addressing(self):
        a = DataObject("A", (4, 3))
        a.base = 1000
        assert a.address([1, 1]) == 1000
        assert a.address([2, 1]) == 1008       # next row: contiguous
        assert a.address([1, 2]) == 1000 + 4 * 8  # next column

    def test_c_order_addressing(self):
        a = DataObject("A", (4, 3), order="C", origin=0)
        a.base = 0
        assert a.address([0, 0]) == 0
        assert a.address([0, 1]) == 8           # last dim contiguous
        assert a.address([1, 0]) == 3 * 8

    def test_size(self):
        a = DataObject("A", (4, 3), elem_size=8)
        assert a.size == 4 * 3 * 8

    def test_record_array_strides(self):
        z = DataObject("zion", (10,), fields=("a", "b", "c"))
        z.base = 0
        assert z.strides == (3 * 8,)
        assert z.address([1], field="a") == 0
        assert z.address([1], field="c") == 16
        assert z.address([2], field="a") == 24

    def test_record_size(self):
        z = DataObject("zion", (10,), fields=("a", "b", "c"))
        assert z.size == 10 * 3 * 8

    def test_field_offset_requires_fields(self):
        a = DataObject("A", (4,))
        with pytest.raises(ValueError):
            a.field_offset("x")

    def test_flat_index_fortran(self):
        a = DataObject("A", (4, 3))
        assert a.flat_index([1, 1]) == 0
        assert a.flat_index([2, 1]) == 1
        assert a.flat_index([1, 2]) == 4

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            DataObject("A", (0, 3))

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            DataObject("A", (4,), order="X")


class TestLayout:
    def test_placement_no_overlap(self):
        lay = MemoryLayout()
        a = lay.array("A", 100)
        b = lay.array("B", 100)
        assert b.base >= a.base + a.size

    def test_page_alignment(self):
        lay = MemoryLayout()
        lay.array("A", 13)
        b = lay.array("B", 7)
        assert b.base % 4096 == 0

    def test_duplicate_name_rejected(self):
        lay = MemoryLayout()
        lay.array("A", 4)
        with pytest.raises(ValueError):
            lay.array("A", 4)

    def test_get_and_contains(self):
        lay = MemoryLayout()
        a = lay.array("A", 4)
        assert lay.get("A") is a
        assert "A" in lay
        assert "B" not in lay

    def test_index_array_has_values(self):
        lay = MemoryLayout()
        ix = lay.index_array("ix", 5)
        assert ix.values is not None
        assert len(ix.values) == 5

    def test_total_bytes(self):
        lay = MemoryLayout()
        lay.array("A", 10)
        lay.array("B", 20)
        assert lay.total_bytes() == 30 * 8


class TestSymbolTable:
    def test_find_inside_object(self):
        lay = MemoryLayout()
        a = lay.array("A", 10)
        b = lay.array("B", 10)
        assert lay.symtab.find(a.base) is a
        assert lay.symtab.find(a.base + 79) is a
        assert lay.symtab.find(b.base + 8) is b

    def test_find_in_padding_returns_none(self):
        lay = MemoryLayout()
        a = lay.array("A", 10)   # 80 bytes, padded to 4096
        lay.array("B", 10)
        assert lay.symtab.find(a.base + 80) is None

    def test_find_below_all_returns_none(self):
        lay = MemoryLayout()
        lay.array("A", 10)
        assert lay.symtab.find(0) is None

    def test_field_of(self):
        lay = MemoryLayout()
        z = lay.array("zion", 10, fields=("x", "y"))
        assert lay.symtab.field_of(z.base) == "x"
        assert lay.symtab.field_of(z.base + 8) == "y"
        assert lay.symtab.field_of(z.base + 16) == "x"

    def test_field_of_plain_array_is_none(self):
        lay = MemoryLayout()
        a = lay.array("A", 10)
        assert lay.symtab.field_of(a.base) is None
