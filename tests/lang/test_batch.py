"""Batched trace pipeline: affinity detection and executor equivalence."""

import pytest

from repro.apps.sweep3d import SweepParams, build_variant
from repro.core import ReuseAnalyzer
from repro.lang import (
    BatchExecutor, Executor, FloorDiv, MemoryLayout, TraceRecorder, Var,
    assign, compile_loop, idx, load, loop, program, routine, run_program,
    run_program_batched, stmt, store,
)


def _finalized_loop(body_builder):
    """Build a one-routine program around a loop and return the Loop node."""
    lay = MemoryLayout()
    nest = body_builder(lay)
    prog = program("p", lay, [routine("main", nest)])
    return prog.routines["main"].body[0], prog


class TestAffinity:
    def test_affine_subscripts_batchable(self):
        i = Var("i")
        lp, _ = _finalized_loop(lambda lay: loop(
            "i", 1, 8,
            stmt(load(lay.array("A", 16), i),
                 store(lay.array("B", 16, 4), i + 2, 3), ops=2)))
        plan = compile_loop(lp)
        assert plan is not None
        assert plan.k == 2
        assert plan.stores == (False, True)
        assert plan.n_loads == 1 and plan.n_stores == 1
        assert plan.ops == 2

    def test_indirect_subscript_not_batchable(self):
        i = Var("i")
        lp, _ = _finalized_loop(lambda lay: loop(
            "i", 1, 8,
            stmt(load(lay.array("A", 64),
                      idx(lay.index_array("P", 8), i)))))
        assert compile_loop(lp) is None

    def test_quadratic_subscript_not_batchable(self):
        i = Var("i")
        lp, _ = _finalized_loop(lambda lay: loop(
            "i", 1, 4, stmt(load(lay.array("A", 32), i * i))))
        assert compile_loop(lp) is None

    def test_scalar_assign_body_not_batchable(self):
        lp, _ = _finalized_loop(lambda lay: loop(
            "i", 1, 4, assign("t", Var("i")),
            stmt(load(lay.array("A", 8), Var("t")))))
        assert compile_loop(lp) is None

    def test_nested_loop_not_batchable(self):
        lp, _ = _finalized_loop(lambda lay: loop(
            "i", 1, 4, loop("j", 1, 4,
                            stmt(load(lay.array("A", 8, 8),
                                      Var("i"), Var("j"))))))
        assert compile_loop(lp) is None
        # ... but its innermost loop is.
        assert compile_loop(lp.body[0]) is not None

    def test_floordiv_of_loop_var_not_batchable(self):
        i = Var("i")
        lp, _ = _finalized_loop(lambda lay: loop(
            "i", 1, 8, stmt(load(lay.array("A", 8),
                                 FloorDiv(i, 2) + 1))))
        assert compile_loop(lp) is None

    def test_env_invariant_floordiv_batchable(self):
        i, b = Var("i"), Var("blk")
        lp, prog = _finalized_loop(lambda lay: loop(
            "i", 1, 8, stmt(load(lay.array("A", 64),
                                 i + FloorDiv(b, 2)))))
        prog.params["blk"] = 4
        assert compile_loop(lp) is not None


class TestExecutorEquivalence:
    @pytest.mark.parametrize("variant", ["original", "block2",
                                         "block6+dimic"])
    def test_sweep3d_identical_analysis(self, variant):
        params = SweepParams(n=5, mm=6, nm=2, noct=1)
        a1 = ReuseAnalyzer({"line": 64, "page": 512})
        s1 = Executor(build_variant(variant, params), a1).run()
        a2 = ReuseAnalyzer({"line": 64, "page": 512})
        s2 = BatchExecutor(build_variant(variant, params), a2).run()
        assert a2.dump_state() == a1.dump_state()
        assert vars(s2) == vars(s1)

    def test_event_stream_identical(self):
        params = SweepParams(n=4, mm=3, nm=2, noct=1)
        r1, r2 = TraceRecorder(), TraceRecorder()
        run_program(build_variant("original", params), r1)
        run_program_batched(build_variant("original", params), r2)
        assert r2.events == r1.events

    def test_negative_step_and_env_restore(self):
        def build(lay):
            a = lay.array("A", 16)
            return loop("i", 10, 2, stmt(load(a, Var("i"))), step=-2)
        _, prog = _finalized_loop(build)

        def build2(lay):
            a = lay.array("A", 16)
            return loop("i", 10, 2, stmt(load(a, Var("i"))), step=-2)
        _, prog2 = _finalized_loop(build2)
        r1, r2 = TraceRecorder(), TraceRecorder()
        assert vars(run_program(prog, r1)) == vars(
            run_program_batched(prog2, r2))
        assert r2.events == r1.events

    def test_zero_trip_loop_events_only(self):
        def build(lay):
            a = lay.array("A", 8)
            return loop("i", 5, 4, stmt(load(a, Var("i"))))
        _, prog = _finalized_loop(build)
        rec = TraceRecorder()
        stats = run_program_batched(prog, rec)
        assert stats.accesses == 0
        assert [e[0] for e in rec.events] == ["enter", "enter", "exit",
                                              "exit"]

    def test_chunking_preserves_results(self):
        params = SweepParams(n=4, mm=3, nm=2, noct=1)
        a1 = ReuseAnalyzer({"line": 64})
        BatchExecutor(build_variant("original", params), a1).run()
        a2 = ReuseAnalyzer({"line": 64})
        BatchExecutor(build_variant("original", params), a2,
                      chunk_accesses=7).run()
        assert a2.dump_state() == a1.dump_state()

    @pytest.mark.slow
    def test_sweep3d_production_mesh_equivalence(self):
        params = SweepParams(n=8, mm=6, nm=3, noct=2)
        a1 = ReuseAnalyzer({"line": 64, "page": 512})
        s1 = Executor(build_variant("original", params), a1).run()
        a2 = ReuseAnalyzer({"line": 64, "page": 512})
        s2 = BatchExecutor(build_variant("original", params), a2).run()
        assert a2.dump_state() == a1.dump_state()
        assert vars(s2) == vars(s1)

    def test_plan_cache_shared_per_program(self):
        params = SweepParams(n=4, mm=3, nm=2, noct=1)
        prog = build_variant("original", params)
        ex1 = BatchExecutor(prog, TraceRecorder())
        ex1.run()
        assert ex1._plans  # populated during the first run
        ex2 = BatchExecutor(prog, TraceRecorder())
        assert ex2._plans is ex1._plans
