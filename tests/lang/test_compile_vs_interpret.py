"""Property: compiled address closures == interpreted addressing.

The executor runs compiled closures for speed; `Access.address()` computes
the same thing interpretively.  They must agree for arbitrary affine
subscripts, record fields, origins, and loop environments.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import MemoryLayout, Var, load, loop, program, routine, stmt


@settings(max_examples=120, deadline=None)
@given(
    shape=st.tuples(st.integers(2, 9), st.integers(2, 9)),
    coeff=st.integers(0, 2),
    offset=st.integers(0, 1),
    origin=st.sampled_from([0, 1]),
    order=st.sampled_from(["F", "C"]),
    env=st.tuples(st.integers(1, 3), st.integers(1, 3)),
)
def test_compiled_address_matches_interpreted(shape, coeff, offset, origin,
                                              order, env):
    n1, n2 = shape
    lay = MemoryLayout()
    a = lay.array("A", 4 * n1 + 4, n2 + 2, order=order, origin=origin)
    i, j = Var("i"), Var("j")
    acc = load(a, coeff * i + offset + origin, j + origin)
    nest = loop("j", origin, origin + 1,
                loop("i", origin, origin + 1, stmt(acc)))
    program("p", lay, [routine("main", nest)])
    environment = {"i": env[0], "j": env[1]}
    assert acc._addr_fn(environment) == acc.address(environment)


@settings(max_examples=60, deadline=None)
@given(
    field_count=st.integers(2, 6),
    field_index=st.integers(0, 5),
    m=st.integers(1, 20),
)
def test_compiled_field_address_matches_interpreted(field_count, field_index,
                                                    m):
    fields = tuple(f"f{k}" for k in range(field_count))
    field = fields[min(field_index, field_count - 1)]
    lay = MemoryLayout()
    z = lay.array("z", 32, fields=fields)
    acc = load(z, Var("m"), field=field)
    program("p", lay, [routine("main", loop("m", 1, 32, stmt(acc)))])
    env = {"m": m}
    assert acc._addr_fn(env) == acc.address(env)
    assert acc.address(env) == z.address([m], field=field)
