"""Tests for the kernel AST: expressions, finalize, compiled closures."""

import pytest

from repro.lang import (
    Access, Const, FloorDiv, Load, Max, MemoryLayout, Min, Mod, Program,
    Var, as_expr, idx, load, loop, program, routine, stmt, store,
)


class TestExpressions:
    def test_arith_eval(self):
        env = {"i": 5, "j": 3}
        expr = (Var("i") + 2) * Var("j") - 1
        assert expr.eval(env) == 20

    def test_rsub_rmul_radd(self):
        env = {"i": 4}
        assert (10 - Var("i")).eval(env) == 6
        assert (3 * Var("i")).eval(env) == 12
        assert (1 + Var("i")).eval(env) == 5

    def test_min_max(self):
        env = {"i": 5}
        assert Min(Var("i"), 3).eval(env) == 3
        assert Max(Var("i"), 3, 7).eval(env) == 7

    def test_mod_floordiv(self):
        env = {"i": 17}
        assert Mod(Var("i"), 5).eval(env) == 2
        assert FloorDiv(Var("i"), 5).eval(env) == 3

    def test_as_expr_coercions(self):
        assert isinstance(as_expr(3), Const)
        assert isinstance(as_expr("i"), Var)
        with pytest.raises(TypeError):
            as_expr(3.5)


def _tiny(n=4):
    lay = MemoryLayout()
    a = lay.array("A", n)
    body = loop("i", 1, n, stmt(load(a, Var("i")), store(a, Var("i")),
                                loc="t:1"), name="I")
    return program("tiny", lay, [routine("main", body)]), a


class TestFinalize:
    def test_scope_ids_assigned(self):
        prog, _ = _tiny()
        kinds = [s.kind for s in prog.scopes]
        assert kinds == ["routine", "loop"]
        assert prog.scope_named("I").kind == "loop"

    def test_ref_ids_assigned(self):
        prog, _ = _tiny()
        assert len(prog.refs) == 2
        assert prog.refs[0].is_store is False
        assert prog.refs[1].is_store is True
        assert all(r.loc == "t:1" for r in prog.refs)

    def test_reused_access_rejected(self):
        lay = MemoryLayout()
        a = lay.array("A", 4)
        acc = load(a, Var("i"))
        body = loop("i", 1, 4, stmt(acc), stmt(acc))
        with pytest.raises(ValueError, match="more than one statement"):
            program("bad", lay, [routine("main", body)])

    def test_missing_entry_rejected(self):
        lay = MemoryLayout()
        with pytest.raises(ValueError, match="entry routine"):
            Program("p", lay, [routine("other")], entry="main")

    def test_call_to_undefined_routine_rejected(self):
        from repro.lang import call
        lay = MemoryLayout()
        with pytest.raises(ValueError, match="undefined routine"):
            program("p", lay, [routine("main", call("nope"))])

    def test_subscript_arity_checked(self):
        lay = MemoryLayout()
        a = lay.array("A", 4, 4)
        with pytest.raises(ValueError, match="subscripts"):
            load(a, Var("i"))

    def test_enclosing_loops_innermost_first(self):
        lay = MemoryLayout()
        a = lay.array("A", 4, 4)
        nest = loop("j", 1, 4,
                    loop("i", 1, 4,
                         stmt(load(a, Var("i"), Var("j"))), name="I"),
                    name="J")
        prog = program("p", lay, [routine("main", nest)])
        chain = prog.enclosing_loops(prog.refs[0].scope)
        assert [c.name for c in chain] == ["I", "J"]


class TestCompiledAddresses:
    def test_compiled_matches_interpreted(self):
        lay = MemoryLayout()
        a = lay.array("A", 8, 8)
        acc = load(a, Var("i") + 1, 2 * Var("j"))
        body = loop("j", 1, 4, loop("i", 1, 4, stmt(acc)))
        program("p", lay, [routine("main", body)])
        for env in ({"i": 1, "j": 1}, {"i": 3, "j": 2}):
            interpreted = a.base + (env["i"] + 1 - 1) * 8 + (2 * env["j"] - 1) * 64
            assert acc._addr_fn(env) == interpreted

    def test_field_access_offsets(self):
        lay = MemoryLayout()
        z = lay.array("z", 8, fields=("x", "y", "w"))
        acc = load(z, Var("m"), field="y")
        body = loop("m", 1, 8, stmt(acc))
        program("p", lay, [routine("main", body)])
        assert acc._addr_fn({"m": 1}) == z.base + 8
        assert acc._addr_fn({"m": 3}) == z.base + 2 * 24 + 8

    def test_indirect_value_load(self):
        lay = MemoryLayout()
        ix = lay.index_array("ix", 4)
        ix.values[:] = [4, 3, 2, 1]
        a = lay.array("A", 4)
        acc = store(a, idx(ix, Var("i")))
        body = loop("i", 1, 4, stmt(acc))
        program("p", lay, [routine("main", body)])
        assert acc._addr_fn({"i": 1}) == a.base + 3 * 8
        assert acc._addr_fn({"i": 4}) == a.base + 0

    def test_index_values_frozen_at_finalize(self):
        lay = MemoryLayout()
        ix = lay.index_array("ix", 2)
        ix.values[:] = [1, 2]
        a = lay.array("A", 4)
        acc = store(a, idx(ix, Var("i")))
        program("p", lay, [routine("main", loop("i", 1, 2, stmt(acc)))])
        ix.values[0] = 4  # too late: closures bound a frozen copy
        assert acc._addr_fn({"i": 1}) == a.base
