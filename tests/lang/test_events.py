"""Event protocol plumbing: Tee fan-out, recorder helpers."""

import pytest

from repro.lang import EventHandler, Tee, TraceRecorder


class _Counting(EventHandler):
    def __init__(self):
        self.enters = 0
        self.exits = 0
        self.accesses = 0

    def enter_scope(self, sid):
        self.enters += 1

    def exit_scope(self, sid):
        self.exits += 1

    def access(self, rid, addr, is_store):
        self.accesses += 1


class TestTee:
    def test_fans_out_in_order(self):
        a, b, c = _Counting(), _Counting(), _Counting()
        tee = Tee(a, b, c)
        tee.enter_scope(0)
        tee.access(0, 64, False)
        tee.access(1, 128, True)
        tee.exit_scope(0)
        for handler in (a, b, c):
            assert (handler.enters, handler.accesses, handler.exits) \
                == (1, 2, 1)

    def test_empty_tee_is_noop(self):
        tee = Tee()
        tee.enter_scope(0)
        tee.access(0, 0, False)
        tee.exit_scope(0)

    def test_base_handler_is_noop(self):
        handler = EventHandler()
        handler.enter_scope(0)
        handler.access(0, 0, False)
        handler.exit_scope(0)


class TestTraceRecorder:
    def test_accessors(self):
        rec = TraceRecorder()
        rec.enter_scope(3)
        rec.access(0, 1000, False)
        rec.access(1, 2000, True)
        rec.exit_scope(3)
        assert rec.addresses() == [1000, 2000]
        assert len(rec.accesses()) == 2
        assert rec.events[0] == ("enter", 3)
        assert rec.events[-1] == ("exit", 3)
