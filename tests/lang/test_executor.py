"""Tests for the instrumented executor: event streams and statistics."""

import pytest

from repro.lang import (
    MemoryLayout, TraceRecorder, Var, assign, call, idx, load, loop,
    program, routine, run_program, stmt, store,
)


def _fig1(n=3, m=2):
    lay = MemoryLayout()
    a = lay.array("A", n, m)
    b = lay.array("B", n, m)
    i, j = Var("i"), Var("j")
    nest = loop("j", 1, m,
                loop("i", 1, n,
                     stmt(load(a, i, j), load(b, i, j), store(a, i, j),
                          ops=1),
                     name="I"),
                name="J")
    return program("fig1", lay, [routine("main", nest)]), a, b


class TestEventStream:
    def test_scope_event_nesting(self):
        prog, _, _ = _fig1()
        rec = TraceRecorder()
        run_program(prog, rec)
        events = rec.events
        assert events[0] == ("enter", prog.scope_named("main").sid)
        assert events[-1] == ("exit", prog.scope_named("main").sid)
        depth = 0
        for e in events:
            if e[0] == "enter":
                depth += 1
            elif e[0] == "exit":
                depth -= 1
                assert depth >= 0
        assert depth == 0

    def test_access_order_and_addresses(self):
        prog, a, b = _fig1(n=2, m=1)
        rec = TraceRecorder()
        run_program(prog, rec)
        accs = rec.accesses()
        assert len(accs) == 6
        # i=1: A(1,1) load, B(1,1) load, A(1,1) store
        assert accs[0] == ("access", 0, a.base, False)
        assert accs[1] == ("access", 1, b.base, False)
        assert accs[2] == ("access", 2, a.base, True)
        # i=2: next row, contiguous
        assert accs[3] == ("access", 0, a.base + 8, False)

    def test_inner_loop_entered_per_outer_iteration(self):
        prog, _, _ = _fig1(n=3, m=4)
        rec = TraceRecorder()
        run_program(prog, rec)
        inner_sid = prog.scope_named("I").sid
        enters = [e for e in rec.events if e == ("enter", inner_sid)]
        assert len(enters) == 4


class TestStats:
    def test_access_and_op_counts(self):
        prog, _, _ = _fig1(n=3, m=2)
        stats = run_program(prog)
        assert stats.accesses == 3 * 2 * 3
        assert stats.loads == 3 * 2 * 2
        assert stats.stores == 3 * 2
        assert stats.ops == 3 * 2
        assert stats.instructions == stats.accesses + stats.ops

    def test_avg_trip_count(self):
        prog, _, _ = _fig1(n=3, m=4)
        stats = run_program(prog)
        assert stats.avg_trip(prog.scope_named("I").sid) == 3.0
        assert stats.avg_trip(prog.scope_named("J").sid) == 4.0

    def test_avg_trip_unknown_loop_is_zero(self):
        prog, _, _ = _fig1()
        stats = run_program(prog)
        assert stats.avg_trip(9999) == 0.0

    def test_scope_insts_attributed_to_innermost(self):
        prog, _, _ = _fig1(n=3, m=2)
        stats = run_program(prog)
        inner_sid = prog.scope_named("I").sid
        assert stats.scope_insts[inner_sid] == 3 * 2 * 4  # 3 accesses + 1 op


class TestControlFlow:
    def test_param_override(self):
        lay = MemoryLayout()
        a = lay.array("A", 10)
        body = loop("i", 1, "N", stmt(load(a, Var("i"))))
        prog = program("p", lay, [routine("main", body)], params={"N": 3})
        assert run_program(prog).accesses == 3
        prog2 = program("p2", MemoryLayout(), [routine("main", loop(
            "i", 1, "N", stmt(load(lay.array("A2", 10), Var("i")))))],
            params={"N": 3})
        stats = run_program(prog2, N=7)
        assert stats.accesses == 7

    def test_negative_step(self):
        lay = MemoryLayout()
        a = lay.array("A", 5)
        body = loop("i", 5, 1, stmt(load(a, Var("i"))), step=-1)
        rec = TraceRecorder()
        run_program(program("p", lay, [routine("main", body)]), rec)
        addrs = rec.addresses()
        assert addrs == [a.base + 8 * k for k in (4, 3, 2, 1, 0)]

    def test_strided_loop(self):
        lay = MemoryLayout()
        a = lay.array("A", 16)
        body = loop("i", 1, 16, stmt(load(a, Var("i"))), step=4)
        assert run_program(program("p", lay, [routine("main", body)])).accesses == 4

    def test_zero_trip_loop(self):
        lay = MemoryLayout()
        a = lay.array("A", 4)
        body = loop("i", 5, 4, stmt(load(a, Var("i"))))
        assert run_program(program("p", lay, [routine("main", body)])).accesses == 0

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            loop("i", 1, 4, step=0)

    def test_call_shares_env(self):
        """Callees see caller scalars (Fortran-style dynamic env)."""
        lay = MemoryLayout()
        a = lay.array("A", 10)
        callee = routine("sub", loop("i", "lo", "hi", stmt(load(a, Var("i"))),
                                     name="sub_i"))
        main = routine("main", assign("lo", 2), assign("hi", 5), call("sub"))
        prog = program("p", lay, [main, callee])
        stats = run_program(prog)
        assert stats.accesses == 4

    def test_scalar_assign_with_load_emits_event(self):
        lay = MemoryLayout()
        ix = lay.index_array("ix", 3)
        ix.values[:] = [3, 1, 2]
        a = lay.array("A", 3)
        body = loop("i", 1, 3,
                    assign("t", idx(ix, Var("i"))),
                    stmt(store(a, Var("t"))))
        prog = program("p", lay, [routine("main", body)])
        rec = TraceRecorder()
        run_program(prog, rec)
        accs = rec.accesses()
        assert len(accs) == 6  # 3 index loads + 3 stores
        stores = [e for e in accs if e[3]]
        assert [e[2] - a.base for e in stores] == [16, 0, 8]

    def test_multiple_handlers_via_tee(self):
        prog, _, _ = _fig1(n=2, m=2)
        r1, r2 = TraceRecorder(), TraceRecorder()
        run_program(prog, r1, r2)
        assert r1.events == r2.events
        assert len(r1.accesses()) == 12
