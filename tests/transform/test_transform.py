"""Program transformations: identity cloning, splitting, interchange, fusion."""

import pytest

from repro.apps.kernels import fig1_interchange, stencil5
from repro.apps.harness import measure
from repro.lang import (
    MemoryLayout, Var, idx, load, loop, program, routine, run_program, stmt,
    store,
)
from repro.transform import Rewriter, fuse, interchange, split_record_array

from tests.helpers import collect_trace


def _aos_prog(fields_used=("a", "c"), n=64):
    lay = MemoryLayout()
    z = lay.array("z", n, fields=("a", "b", "c", "d"))
    other = lay.array("other", n)
    refs = [load(z, Var("m"), field=f) for f in fields_used]
    nest = loop("m", 1, n, stmt(*refs, store(other, Var("m"))), name="M")
    return program("aos", lay, [routine("main", nest)])


class TestIdentityClone:
    def test_clone_preserves_trace_shape(self):
        """Identity rewrite keeps relative addresses and access order."""
        orig = fig1_interchange(16, 16)
        clone = Rewriter(fig1_interchange(16, 16)).run()
        t1 = collect_trace(fig1_interchange(16, 16))
        t2 = collect_trace(clone)
        assert len(t1) == len(t2)
        assert [(r, s) for r, _a, s in t1] == [(r, s) for r, _a, s in t2]
        # addresses equal modulo each array's (re)placement
        a1 = fig1_interchange(16, 16).layout.get("A")
        a2 = clone.layout.get("A")
        deltas = {addr2 - addr1 for (_r1, addr1, _s1), (_r2, addr2, _s2)
                  in zip(t1, t2)}
        assert len(deltas) <= 2  # one offset per array

    def test_clone_preserves_misses(self):
        orig = fig1_interchange(32, 32)
        clone = Rewriter(fig1_interchange(32, 32)).run()
        assert measure(orig).misses == measure(clone).misses

    def test_clone_with_indirect_access(self):
        lay = MemoryLayout()
        ix = lay.index_array("ix", 8)
        ix.values[:] = [8, 7, 6, 5, 4, 3, 2, 1]
        a = lay.array("A", 8)
        nest = loop("m", 1, 8, stmt(store(a, idx(ix, Var("m")))), name="M")
        prog = program("p", lay, [routine("main", nest)])
        clone = Rewriter(prog).run()
        t = collect_trace(clone)
        stores = [addr for _r, addr, s in t if s]
        new_a = clone.layout.get("A")
        assert stores == [new_a.base + 8 * k for k in range(7, -1, -1)]


class TestSplit:
    def test_split_reduces_misses(self):
        aos = _aos_prog()
        soa = split_record_array(_aos_prog(), "z")
        assert measure(soa).misses["L2"] < measure(aos).misses["L2"]

    def test_split_creates_field_arrays(self):
        soa = split_record_array(_aos_prog(), "z")
        assert "z_a" in soa.layout
        assert "z_d" in soa.layout
        assert "z" not in soa.layout

    def test_split_preserves_access_count(self):
        aos = _aos_prog()
        soa = split_record_array(_aos_prog(), "z")
        assert run_program(aos).accesses == run_program(soa).accesses

    def test_split_matches_handwritten_soa_for_gtc(self):
        """Mechanical zion split == the hand-written '+zion transpose'."""
        from repro.apps.gtc import GTCParams, build_gtc, variant_by_name
        params = GTCParams(mpsi=4, mtheta=6, micell=2, mzeta=2, timesteps=1)
        split_once = split_record_array(build_gtc(None, params), "zion")
        auto = split_record_array(split_once, "zion0")
        hand = build_gtc(variant_by_name("+zion transpose"), params)
        m_auto, m_hand = measure(auto), measure(hand)
        # The hand variant has no particle_array alias (separate storage in
        # the auto version), so totals match within a small tolerance.
        for level in ("L2", "L3", "TLB"):
            assert m_auto.misses[level] == pytest.approx(
                m_hand.misses[level], rel=0.30)

    def test_split_unknown_array_rejected(self):
        with pytest.raises(KeyError):
            split_record_array(_aos_prog(), "nope")

    def test_split_plain_array_rejected(self):
        lay = MemoryLayout()
        a = lay.array("A", 8)
        prog = program("p", lay, [routine(
            "main", loop("i", 1, 8, stmt(load(a, Var("i")))))])
        with pytest.raises(ValueError):
            split_record_array(prog, "A")

    def test_split_whole_record_access_rejected(self):
        lay = MemoryLayout()
        z = lay.array("z", 8, fields=("a", "b"))
        prog = program("p", lay, [routine(
            "main", loop("m", 1, 8, stmt(load(z, Var("m")))))])
        with pytest.raises(ValueError, match="without naming a field"):
            split_record_array(prog, "z")


class TestInterchange:
    def test_matches_handwritten_fig1b(self):
        auto = interchange(fig1_interchange(48, 48), "I")
        hand = fig1_interchange(48, 48, interchanged=True)
        assert measure(auto).misses == measure(hand).misses

    def test_structure_swapped(self):
        auto = interchange(fig1_interchange(8, 8), "I")
        outer = [s for s in auto.scopes if s.kind == "loop" and s.depth == 1]
        assert outer[0].name == "J"

    def test_unknown_loop_rejected(self):
        with pytest.raises(KeyError):
            interchange(fig1_interchange(8, 8), "Z")

    def test_imperfect_nest_rejected(self):
        lay = MemoryLayout()
        a = lay.array("A", 8, 8)
        nest = loop("i", 1, 8,
                    stmt(load(a, Var("i"), 1)),
                    loop("j", 1, 8, stmt(load(a, Var("i"), Var("j"))),
                         name="J"),
                    name="I")
        prog = program("p", lay, [routine("main", nest)])
        with pytest.raises(ValueError, match="perfectly nested"):
            interchange(prog, "I")


class TestFusion:
    def test_fusion_reduces_misses(self):
        orig = stencil5(48, 1)
        fused = fuse(stencil5(48, 1), "J", "J2")
        assert measure(fused).misses["L3"] < measure(orig).misses["L3"]

    def test_fusion_preserves_stores(self):
        orig = stencil5(16, 1)
        fused = fuse(stencil5(16, 1), "J", "J2")
        def stores(prog):
            u = prog.layout.get("U")
            return sorted(addr - u.base for _r, addr, s in
                          collect_trace(prog)
                          if s and u.base <= addr < u.base + u.size)
        assert stores(orig) == stores(fused)

    def test_fused_loop_name(self):
        fused = fuse(stencil5(16, 1), "J", "J2")
        assert any(s.name == "J+J2" for s in fused.scopes)

    def test_non_adjacent_rejected(self):
        lay = MemoryLayout()
        a = lay.array("A", 8)
        body = [
            loop("i", 1, 8, stmt(load(a, Var("i"))), name="L1"),
            loop("j", 1, 8, stmt(load(a, Var("j"))), name="L2"),
            loop("k", 1, 8, stmt(load(a, Var("k"))), name="L3"),
        ]
        prog = program("p", lay, [routine("main", *body)])
        with pytest.raises(ValueError, match="not adjacent"):
            fuse(prog, "L1", "L3")

    def test_mismatched_bounds_rejected(self):
        lay = MemoryLayout()
        a = lay.array("A", 16)
        body = [
            loop("i", 1, 8, stmt(load(a, Var("i"))), name="L1"),
            loop("j", 1, 16, stmt(load(a, Var("j"))), name="L2"),
        ]
        prog = program("p", lay, [routine("main", *body)])
        with pytest.raises(ValueError, match="bounds differ"):
            fuse(prog, "L1", "L2")

    def test_missing_loops_rejected(self):
        with pytest.raises(KeyError):
            fuse(stencil5(16, 1), "nope1", "nope2")


class TestRecommendationRoundTrip:
    """The tool's advice, applied mechanically, fixes the problem it found."""

    def test_interchange_roundtrip(self):
        from repro.tools import AnalysisSession, INTERCHANGE
        session = AnalysisSession(fig1_interchange(48, 48))
        session.run()
        recs = [r for r in session.recommendations("L2", 5)
                if r.scenario == INTERCHANGE]
        assert recs
        carrier = session.program.scope(recs[0].pattern.carry_sid)
        fixed = interchange(fig1_interchange(48, 48), carrier.name)
        before = measure(fig1_interchange(48, 48)).misses["L2"]
        after = measure(fixed).misses["L2"]
        assert after < before / 3

    def test_fragmentation_roundtrip(self):
        from repro.tools import AnalysisSession, FRAGMENTATION
        session = AnalysisSession(_aos_prog(n=2048))
        session.run()
        recs = [r for r in session.recommendations("L2", 5)
                if r.scenario == FRAGMENTATION]
        assert recs
        array = recs[0].pattern.array
        fixed = split_record_array(_aos_prog(n=2048), array)
        before = measure(_aos_prog(n=2048)).misses["L2"]
        after = measure(fixed).misses["L2"]
        assert after < 0.7 * before
