"""Machine configuration invariants."""

import pytest

from repro.model.config import MachineConfig, MemoryLevel


class TestMemoryLevel:
    def test_derived_quantities(self):
        lvl = MemoryLevel("L2", 4096, 64, 8, "line", 6)
        assert lvl.num_blocks == 64
        assert lvl.num_sets == 8
        assert not lvl.fully_associative

    def test_fully_associative(self):
        lvl = MemoryLevel("TLB", 16 * 512, 512, 16, "page", 15)
        assert lvl.fully_associative

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MemoryLevel("X", 100, 64, 2, "line", 1)

    def test_associativity_validation(self):
        with pytest.raises(ValueError):
            MemoryLevel("X", 4096, 64, 7, "line", 1)


class TestMachineConfig:
    def test_scaled_preset_consistent(self):
        cfg = MachineConfig.scaled_itanium2()
        assert cfg.level("L2").capacity < cfg.level("L3").capacity
        grans = cfg.granularities()
        assert grans["line"] == 64
        assert grans["page"] == 512

    def test_itanium2_preset(self):
        cfg = MachineConfig.itanium2()
        assert cfg.level("L2").capacity == 256 * 1024
        assert cfg.level("L3").associativity == 6
        assert cfg.level("TLB").fully_associative

    def test_level_lookup_missing(self):
        with pytest.raises(KeyError):
            MachineConfig.scaled_itanium2().level("L9")

    def test_cache_and_tlb_partition(self):
        cfg = MachineConfig.scaled_itanium2()
        names = {l.name for l in cfg.cache_levels()}
        assert names == {"L2", "L3"}
        assert [l.name for l in cfg.tlb_levels()] == ["TLB"]

    def test_conflicting_granularity_block_sizes_rejected(self):
        cfg = MachineConfig(
            name="bad",
            levels=(
                MemoryLevel("A", 4096, 64, 8, "line", 1),
                MemoryLevel("B", 4096, 128, 8, "line", 1),
            ),
        )
        with pytest.raises(ValueError):
            cfg.granularities()

    def test_str_renders(self):
        text = str(MachineConfig.scaled_itanium2())
        assert "L2" in text and "L3" in text and "TLB" in text
