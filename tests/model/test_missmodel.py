"""Miss models: the FA threshold rule and the probabilistic SA model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import Histogram
from repro.model.config import MemoryLevel
from repro.model.missmodel import (
    expected_misses, fa_misses, miss_probability_at, sa_miss_probability,
    sa_misses,
)

from tests.helpers import naive_binomial_sf

L_FA = MemoryLevel("FA", 64 * 64, 64, 64, "line", 10)     # fully assoc, 64 lines
L_SA = MemoryLevel("SA", 4096, 64, 8, "line", 10)          # 8 sets x 8 ways


class TestFAModel:
    def test_threshold_rule(self):
        h = Histogram()
        h.add(63)    # hit: d < 64
        h.add(64)    # miss
        h.add(1000)  # miss
        assert fa_misses(h, L_FA) == 2

    def test_cold_always_misses(self):
        h = Histogram()
        h.add_cold(5)
        assert fa_misses(h, L_FA) == 5

    def test_miss_probability_at(self):
        assert miss_probability_at(63, L_FA) == 0.0
        assert miss_probability_at(64, L_FA) == 1.0


class TestSAProbability:
    def test_below_associativity_never_misses(self):
        for d in range(8):
            assert sa_miss_probability(d, 8, 8) == 0.0

    def test_fully_associative_special_case(self):
        assert sa_miss_probability(63, 1, 64) == 0.0
        assert sa_miss_probability(64, 1, 64) == 1.0

    def test_matches_naive_binomial(self):
        for d in (8, 20, 64, 100, 500):
            got = sa_miss_probability(d, 8, 8)
            want = naive_binomial_sf(d, 1 / 8, 8)
            assert got == pytest.approx(want, abs=1e-9)

    def test_monotone_in_distance(self):
        probs = [sa_miss_probability(d, 8, 8) for d in range(0, 400, 7)]
        assert all(b >= a - 1e-12 for a, b in zip(probs, probs[1:]))

    def test_far_beyond_capacity_certain_miss(self):
        assert sa_miss_probability(100_000, 8, 8) == pytest.approx(1.0)

    def test_normal_approximation_continuity(self):
        """The exact/approx switch at n=4096 must not jump."""
        exact = sa_miss_probability(4096, 64, 8)
        approx = sa_miss_probability(4097, 64, 8)
        assert approx == pytest.approx(exact, abs=0.02)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=10000))
    def test_probability_in_unit_interval(self, d):
        p = sa_miss_probability(d, 16, 4)
        assert 0.0 <= p <= 1.0


class TestExpectedMisses:
    def test_sa_bounded_by_total(self):
        h = Histogram()
        for d in (1, 10, 50, 64, 70, 200):
            h.add(d, 10)
        misses = sa_misses(h, L_SA)
        assert 0 <= misses <= h.total

    def test_sa_at_least_fa_far_from_capacity(self):
        """For distances well past capacity both models agree."""
        h = Histogram()
        h.add(10_000, 5)
        assert sa_misses(h, L_SA) == pytest.approx(fa_misses(h, L_SA))

    def test_model_dispatch(self):
        h = Histogram()
        h.add(100)
        assert expected_misses(h, L_FA, "fa") == fa_misses(h, L_FA)
        assert expected_misses(h, L_SA, "sa") == sa_misses(h, L_SA)
        with pytest.raises(ValueError):
            expected_misses(h, L_SA, "nope")

    def test_cold_included_in_sa(self):
        h = Histogram()
        h.add_cold(7)
        assert sa_misses(h, L_SA) == 7
