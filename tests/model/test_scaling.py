"""Cross-input scaling model: fits, reconstruction, miss extrapolation."""

import pytest

from repro.core import ReuseAnalyzer
from repro.lang import run_program
from repro.model import MachineConfig, ScalingModel, fit_series
from repro.model.scaling import QUANTILES

from repro.apps.kernels import stream_triad

CFG = MachineConfig.scaled_itanium2()


class TestSeriesFit:
    def test_linear_series(self):
        model = fit_series([4, 8, 16, 32], [8, 16, 32, 64])
        assert model.predict(64) == pytest.approx(128, rel=0.05)

    def test_quadratic_series(self):
        sizes = [4, 8, 16, 32]
        model = fit_series(sizes, [s * s for s in sizes])
        assert model.predict(64) == pytest.approx(4096, rel=0.05)

    def test_constant_series(self):
        model = fit_series([4, 8, 16], [7, 7, 7])
        assert model.predict(100) == pytest.approx(7, rel=0.05)

    def test_nonnegative_prediction(self):
        model = fit_series([4, 8, 16], [10, 5, 1])
        assert model.predict(64) >= 0.0

    def test_describe_mentions_dominant_term(self):
        sizes = [4, 8, 16, 32]
        model = fit_series(sizes, [3 * s for s in sizes])
        assert "n" in model.describe()


def _dbs_for(sizes):
    dbs = []
    for n in sizes:
        analyzer = ReuseAnalyzer(CFG.granularities())
        run_program(stream_triad(n=n, timesteps=2), analyzer)
        dbs.append(analyzer.db("line"))
    return dbs


class TestScalingModel:
    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            ScalingModel.fit([4], _dbs_for([256]))
        with pytest.raises(ValueError):
            ScalingModel.fit([4, 8], _dbs_for([256]))

    def test_histogram_counts_scale(self):
        sizes = [256, 512, 1024, 2048]
        model = ScalingModel.fit(sizes, _dbs_for(sizes))
        hists = model.predict_histograms(4096)
        total = sum(h.total for h in hists.values())
        # triad executes 3 accesses x n x timesteps
        assert total == pytest.approx(3 * 4096 * 2, rel=0.1)

    def test_predicted_distances_grow_with_size(self):
        """Triad reuse distance across time steps is ~ 3n/8 lines."""
        sizes = [256, 512, 1024, 2048]
        model = ScalingModel.fit(sizes, _dbs_for(sizes))
        small = model.predict_histograms(512)
        large = model.predict_histograms(8192)
        mean_small = max(h.mean() for h in small.values())
        mean_large = max(h.mean() for h in large.values())
        assert mean_large > 4 * mean_small

    def test_miss_extrapolation_crosses_capacity(self):
        """Predicted L3 misses jump once the working set outgrows L3."""
        sizes = [128, 256, 512, 1024]
        model = ScalingModel.fit(sizes, _dbs_for(sizes))
        level = CFG.level("L3")
        # L3 = 32KB = 512 lines; triad working set 3n*8 bytes.
        inside = model.predict_misses(512, level)    # 12KB: fits
        outside = model.predict_misses(8192, level)  # 192KB: line reuses miss
        # Per line (8 doubles): one cold miss + one cross-timestep miss;
        # the 7 within-line spatial reuses stay hits at any size.
        lines = 3 * 8192 // 8
        assert outside > inside
        assert outside == pytest.approx(2 * lines, rel=0.2)

    def test_pattern_misses_keys_match(self):
        sizes = [256, 512]
        model = ScalingModel.fit(sizes, _dbs_for(sizes))
        per = model.predict_pattern_misses(1024, CFG.level("L2"))
        assert set(per) == set(model.patterns)

    def test_quantile_models_per_pattern(self):
        sizes = [256, 512]
        model = ScalingModel.fit(sizes, _dbs_for(sizes))
        for ps in model.patterns.values():
            assert len(ps.quantile_models) == len(QUANTILES)
