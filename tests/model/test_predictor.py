"""Predictor vs ground-truth simulation, and attribution consistency."""

import pytest

from repro.core import ReuseAnalyzer
from repro.lang import run_program
from repro.model import MachineConfig, predict
from repro.sim import HierarchySim

from tests.helpers import two_array_kernel

CFG = MachineConfig.scaled_itanium2()


def _predict(prog_builder, model="sa"):
    prog = prog_builder()
    analyzer = ReuseAnalyzer(CFG.granularities())
    run_program(prog, analyzer)
    return prog, predict(analyzer, CFG, prog, model=model)


def _simulate(prog_builder):
    prog = prog_builder()
    sim = HierarchySim(CFG)
    run_program(prog, sim)
    return sim.totals()


class TestAgainstSimulator:
    # n=41: the transposed-B stride (41*8 = 328B) is not line-aligned, so
    # set indices stay near-uniform and the LRU-stack models apply.  A
    # line-aligned pathological stride (e.g. n=48: 6 lines) concentrates
    # lines in a few sets — a known limit of reuse-distance models.
    def test_fa_model_tracks_simulator(self):
        """With low-conflict streams the FA model is near-exact."""
        build = lambda: two_array_kernel(41, 41, transposed_b=True)
        _, pred = _predict(build, model="fa")
        sim = _simulate(build)
        for level in ("L2", "L3", "TLB"):
            assert pred.levels[level].total == pytest.approx(
                sim[level], rel=0.05, abs=4)

    def test_sa_model_within_factor(self):
        build = lambda: two_array_kernel(41, 41, transposed_b=True)
        _, pred = _predict(build, model="sa")
        sim = _simulate(build)
        for level in ("L2", "L3"):
            assert pred.levels[level].total >= 0.7 * sim[level]
            assert pred.levels[level].total <= 2.0 * sim[level]

    def test_tlb_prediction_exact_for_fully_associative(self):
        build = lambda: two_array_kernel(64, 64, transposed_b=True)
        _, pred = _predict(build, model="sa")
        sim = _simulate(build)
        assert pred.levels["TLB"].total == pytest.approx(sim["TLB"], rel=0.02)


class TestAttributionConsistency:
    def test_breakdowns_sum_to_total(self):
        prog, pred = _predict(lambda: two_array_kernel(32, 32, True))
        for level_pred in pred.levels.values():
            total = level_pred.total
            assert sum(level_pred.by_dest_scope().values()) == pytest.approx(total)
            assert sum(level_pred.by_array().values()) == pytest.approx(total)
            assert sum(level_pred.by_ref().values()) == pytest.approx(total)
            carried = sum(level_pred.carried_by_scope().values())
            assert carried == pytest.approx(total - level_pred.cold)

    def test_by_array_names(self):
        prog, pred = _predict(lambda: two_array_kernel(32, 32, True))
        assert set(pred.levels["L3"].by_array()) <= {"A", "B"}

    def test_for_scope_by_carry_subset(self):
        prog, pred = _predict(lambda: two_array_kernel(32, 32, True))
        lp = pred.levels["L2"]
        inner = prog.scope_named("I").sid
        per_carry = lp.for_scope_by_carry(inner)
        assert sum(per_carry.values()) <= lp.total + 1e-9

    def test_totals_and_repr(self):
        prog, pred = _predict(lambda: two_array_kernel(16, 16))
        totals = pred.totals()
        assert set(totals) == {"L2", "L3", "TLB"}
        assert "Prediction(" in repr(pred)

    def test_cold_misses_counted_every_level(self):
        """Each distinct line/page is one compulsory miss."""
        prog, pred = _predict(lambda: two_array_kernel(32, 32))
        lines = (32 * 32 * 8 // 64) * 2        # A and B footprints
        assert pred.levels["L2"].cold == pytest.approx(lines, rel=0.1)
        assert pred.levels["L3"].cold == pred.levels["L2"].cold


class TestRatesAndTraffic:
    def test_miss_rate(self):
        prog, pred = _predict(lambda: two_array_kernel(32, 32, True))
        from repro.lang import run_program
        stats = run_program(two_array_kernel(32, 32, True))
        lp = pred.levels["L2"]
        assert lp.miss_rate(stats.accesses) == pytest.approx(
            lp.total / stats.accesses)
        assert lp.miss_rate(0) == 0.0

    def test_traffic_is_misses_times_block(self):
        prog, pred = _predict(lambda: two_array_kernel(32, 32, True))
        lp = pred.levels["L3"]
        assert lp.traffic_bytes == pytest.approx(lp.total * 64)
        per_array = lp.traffic_by_array()
        assert sum(per_array.values()) == pytest.approx(lp.traffic_bytes)


class TestCrossConfigPrediction:
    """Architecture independence: one measurement, many machine configs."""

    def test_one_run_predicts_multiple_configs(self):
        from repro.core import ReuseAnalyzer
        from repro.lang import run_program
        from repro.model import MemoryLevel, MachineConfig

        small = MachineConfig("small", (
            MemoryLevel("L2", 2 * 1024, 64, 8, "line", 6),
            MemoryLevel("TLB", 8 * 512, 512, 8, "page", 15),
        ))
        big = MachineConfig("big", (
            MemoryLevel("L2", 64 * 1024, 64, 8, "line", 6),
            MemoryLevel("TLB", 64 * 512, 512, 64, "page", 15),
        ))
        prog = two_array_kernel(48, 48, transposed_b=True)
        analyzer = ReuseAnalyzer({"line": 64, "page": 512})
        run_program(prog, analyzer)
        pred_small = predict(analyzer, small, prog)
        pred_big = predict(analyzer, big, prog)
        # a strictly larger cache never misses more (LRU inclusion)
        assert pred_big.levels["L2"].total <= pred_small.levels["L2"].total
        assert pred_big.levels["TLB"].total <= pred_small.levels["TLB"].total
        # and both see the same compulsory floor
        assert pred_big.levels["L2"].cold == pred_small.levels["L2"].cold

    def test_inclusion_property_across_capacities(self):
        """Miss counts are non-increasing in capacity (stack inclusion)."""
        from repro.core import ReuseAnalyzer
        from repro.lang import run_program
        from repro.model import MemoryLevel
        from repro.model.predictor import predict_from_db

        prog = two_array_kernel(40, 40, transposed_b=True)
        analyzer = ReuseAnalyzer({"line": 64})
        run_program(prog, analyzer)
        db = analyzer.db("line")
        previous = float("inf")
        for kilobytes in (1, 2, 4, 8, 16, 32, 64):
            level = MemoryLevel("C", kilobytes * 1024, 64,
                                kilobytes * 1024 // 64, "line", 1)
            total = predict_from_db(db, level, prog, model="fa").total
            assert total <= previous + 1e-9
            previous = total
