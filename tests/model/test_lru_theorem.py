"""The stack-distance theorem: FA-LRU misses == distances >= capacity.

The foundation the whole paper rests on (Mattson et al. 1970, restated in
Section I): "to understand if a memory access is a hit or miss in a
fully-associative cache using LRU replacement, one can simply compare the
distance of the reuse with the size of the cache."

Property-tested end to end: for random block streams, feeding the measured
histogram through the FA model gives *exactly* the naive LRU simulator's
miss count, for every capacity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReuseAnalyzer
from repro.core.histogram import EXACT_LIMIT
from repro.model.config import MemoryLevel
from repro.model.missmodel import fa_misses

from tests.helpers import NaiveLRUCache


@settings(max_examples=120, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=24),
                    min_size=1, max_size=250),
    capacity=st.integers(min_value=1, max_value=30),
)
def test_fa_lru_equals_stack_distance_threshold(blocks, capacity):
    analyzer = ReuseAnalyzer({"line": 64})
    analyzer.enter_scope(0)
    cache = NaiveLRUCache(capacity, 64)
    for b in blocks:
        analyzer.access(0, b * 64, False)
        cache.access(b * 64)
    merged = analyzer.db("line").merged_histogram()
    level = MemoryLevel("FA", capacity * 64, 64, capacity, "line", 1)
    predicted = fa_misses(merged, level)
    # Distances below EXACT_LIMIT are binned exactly, so for capacities in
    # the exact range the theorem holds with equality.
    assert capacity < EXACT_LIMIT
    assert predicted == cache.misses
