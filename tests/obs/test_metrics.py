"""Metrics registry: counters, timers, histograms, merge, null objects."""

import json

import pytest

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry, delta


class TestMetricObjects:
    def test_counter(self):
        c = metrics.Counter("x")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_gauge(self):
        g = metrics.Gauge("x")
        g.set(2.5)
        assert g.value == 2.5

    def test_timer_observe(self):
        t = metrics.Timer("x")
        t.observe(0.5)
        t.observe(1.5)
        assert t.count == 2
        assert t.total_s == 2.0
        assert t.min_s == 0.5 and t.max_s == 1.5
        assert t.mean_s == 1.0

    def test_timer_context_manager(self):
        t = metrics.Timer("x")
        with t.time():
            pass
        assert t.count == 1
        assert t.total_s >= 0.0

    def test_histogram_log2_bins(self):
        h = metrics.Histogram("x")
        for v in (0, 1, 2, 3, 1024):
            h.observe(v)
        assert h.count == 5
        assert h.bins[-1] == 1      # 0
        assert h.bins[0] == 1       # 1
        assert h.bins[1] == 2       # 2, 3
        assert h.bins[10] == 1      # 1024


class TestRegistry:
    def test_get_or_create_memoizes(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.timer("a")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.timer("t").observe(0.25)
        reg.histogram("h").observe(7)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 1.5
        assert snap["timers"]["t"]["count"] == 1
        assert snap["histograms"]["h"] == {"2": 1}

    def test_merge_aggregates(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for reg in (a, b):
            reg.counter("c").inc(2)
            reg.timer("t").observe(1.0)
            reg.histogram("h").observe(4)
        b.timer("t").observe(3.0)
        a.merge(b.snapshot())
        assert a.counter("c").value == 4
        t = a.timer("t")
        assert t.count == 3 and t.total_s == 5.0
        assert t.min_s == 1.0 and t.max_s == 3.0
        assert a.histogram("h").bins[2] == 2

    def test_merge_empty_timer_ignored(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.timer("t")
        a.merge(b.snapshot())
        assert a.timer("t").count == 0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert len(reg) == 0


class TestDelta:
    def test_counters_subtract_and_zero_drops(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.counter("b").inc(1)
        before = reg.snapshot()
        reg.counter("a").inc(2)
        d = delta(before, reg.snapshot())
        assert d["counters"] == {"a": 2}

    def test_timer_delta(self):
        reg = MetricsRegistry()
        reg.timer("t").observe(1.0)
        before = reg.snapshot()
        reg.timer("t").observe(2.0)
        d = delta(before, reg.snapshot())
        assert d["timers"]["t"]["count"] == 1
        assert d["timers"]["t"]["total_s"] == pytest.approx(2.0)

    def test_new_metric_passes_through(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.counter("fresh").inc(3)
        assert delta(before, reg.snapshot())["counters"] == {"fresh": 3}


class TestModuleSwitch:
    def test_disabled_returns_null_objects(self):
        assert not metrics.is_enabled()
        c = metrics.counter("nothing")
        c.inc(100)
        assert c.value == 0
        t = metrics.timer("nothing")
        with t.time():
            pass
        assert t.count == 0
        metrics.histogram("nothing").observe(4)
        metrics.gauge("nothing").set(9)
        # none of these registered anything
        assert "nothing" not in metrics.snapshot()["counters"]

    def test_enabled_records(self, obs_on):
        metrics.counter("real").inc(2)
        assert obs_on.counter("real").value == 2
        assert metrics.snapshot()["counters"]["real"] == 2

    def test_scoped_isolates_and_restores(self, obs_on):
        metrics.counter("outer").inc()
        with metrics.scoped() as inner:
            metrics.counter("inner").inc()
            assert "outer" not in metrics.snapshot()["counters"]
        assert inner.counter("inner").value == 1
        assert metrics.snapshot()["counters"] == {"outer": 1}
