"""Run manifests: session integration, JSON roundtrip, rendering."""

import json

from repro.apps.kernels import fig1_interchange
from repro.obs.manifest import RunManifest
from repro.tools import AnalysisCache, AnalysisSession, program_fingerprint


class TestSessionManifest:
    def test_every_run_leaves_a_manifest(self):
        session = AnalysisSession(fig1_interchange(8, 8))
        assert session.manifest is None
        session.run()
        m = session.manifest
        assert m.program == session.program.name
        assert m.fingerprint == program_fingerprint(session.program)
        assert m.executor == "batch"
        assert m.engine == "fenwick"
        assert not m.cache_attached and not m.from_cache
        assert m.events["accesses"] == session.stats.accesses
        assert m.events["clock"] == session.analyzer.clock
        assert "execute" in m.phases
        assert m.phases["execute"] > 0

    def test_scalar_executor_recorded(self):
        session = AnalysisSession(fig1_interchange(8, 8), batch=False)
        session.run()
        assert session.manifest.executor == "scalar"

    def test_cache_hit_recorded(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        AnalysisSession(fig1_interchange(8, 8), cache=cache).run()
        s2 = AnalysisSession(fig1_interchange(8, 8), cache=cache)
        s2.run()
        m = s2.manifest
        assert m.cache_attached and m.from_cache
        assert "cache_lookup" in m.phases
        assert "execute" not in m.phases

    def test_metrics_delta_attached_when_enabled(self, obs_on):
        session = AnalysisSession(fig1_interchange(8, 8))
        session.run()
        counters = session.manifest.metrics["counters"]
        assert counters["analyzer.batch_events"] == session.stats.accesses
        assert counters["batch.chunks"] >= 1

    def test_metrics_empty_when_disabled(self):
        session = AnalysisSession(fig1_interchange(8, 8))
        session.run()
        assert session.manifest.metrics == {}

    def test_predict_phase_recorded_lazily(self):
        session = AnalysisSession(fig1_interchange(8, 8))
        session.run()
        assert "predict" not in session.manifest.phases
        session.totals()
        assert session.manifest.phases["predict"] >= 0


class TestSerialization:
    def test_json_roundtrip(self, tmp_path):
        session = AnalysisSession(fig1_interchange(8, 8))
        session.run()
        path = str(tmp_path / "manifest.json")
        session.manifest.save(path)
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == session.manifest.to_dict()

    def test_to_dict_is_json_serializable_with_metrics(self, obs_on):
        session = AnalysisSession(fig1_interchange(8, 8))
        session.run()
        round_tripped = json.loads(session.manifest.to_json())
        assert round_tripped["events"]["accesses"] == session.stats.accesses
        assert round_tripped["metrics"]["counters"]

    def test_from_dict_tolerates_missing_fields(self):
        m = RunManifest.from_dict({"program": "p"})
        assert m.program == "p"
        assert m.events == {} and m.phases == {}


class TestRender:
    def test_render_mentions_phases_events_counters(self, obs_on):
        session = AnalysisSession(fig1_interchange(8, 8))
        session.run()
        text = session.manifest.render()
        assert "execute" in text
        assert "accesses=" in text
        assert "analyzer.batch_events" in text
        assert session.manifest.fingerprint[:12] in text

    def test_render_cache_states(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        s1 = AnalysisSession(fig1_interchange(8, 8), cache=cache)
        s1.run()
        assert "cache: miss" in s1.manifest.render()
        s2 = AnalysisSession(fig1_interchange(8, 8), cache=cache)
        s2.run()
        assert "cache: hit" in s2.manifest.render()
