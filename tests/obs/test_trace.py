"""Trace spans: nesting, timing, JSONL serialization, disabled no-ops."""

import json

from repro.obs import trace
from repro.obs.trace import Tracer


class TestTracer:
    def test_span_records_timing(self):
        tracer = Tracer()
        with tracer.span("work") as sp:
            sum(range(1000))
        assert len(tracer) == 1
        assert sp.wall_s >= 0.0
        assert sp.cpu_s >= 0.0
        assert sp.parent is None

    def test_nesting_sets_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent == outer.id
        # completion order: inner finishes first
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_attrs_via_set(self):
        tracer = Tracer()
        with tracer.span("s", program="x") as sp:
            sp.set(accesses=7)
        assert tracer.spans[0].attrs == {"program": "x", "accesses": 7}

    def test_exception_unwinds_stack(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        with tracer.span("after") as sp:
            pass
        assert sp.parent is None

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", key=1):
            with tracer.span("b"):
                pass
        path = tracer.write_jsonl(str(tmp_path / "trace.jsonl"))
        lines = [json.loads(line)
                 for line in open(path).read().splitlines()]
        assert [d["name"] for d in lines] == ["b", "a"]
        assert lines[1]["attrs"] == {"key": 1}
        assert lines[0]["parent"] == lines[1]["id"]
        assert all("wall_s" in d and "cpu_s" in d for d in lines)

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.reset()
        assert len(tracer) == 0


class TestGlobalSpan:
    def test_disabled_is_noop(self):
        trace.reset()
        with trace.span("ignored") as sp:
            sp.set(anything=1)
        assert len(trace.tracer()) == 0

    def test_enabled_records_on_global_tracer(self, obs_on):
        with trace.span("real") as sp:
            sp.set(n=3)
        assert len(trace.tracer()) == 1
        assert trace.tracer().spans[0].attrs == {"n": 3}
