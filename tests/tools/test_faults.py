"""The fault-injection harness itself must be deterministic and safe."""

import os
import pickle
import time

import pytest

from repro.testing import faults
from repro.testing.faults import FaultInjected, FaultSpec


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(point="p", action="explode")
        with pytest.raises(ValueError):
            FaultSpec(point="p", action="raise", exc="SystemExit")
        with pytest.raises(ValueError):
            FaultSpec(point="p", action="raise", times=-1)

    def test_match_is_subset_equality(self):
        spec = FaultSpec(point="p", action="raise",
                         match=(("key", 8), ("unit", "task")))
        assert spec.matches({"key": 8, "unit": "task", "attempt": 0})
        assert not spec.matches({"key": 9, "unit": "task"})
        assert not spec.matches({"key": 8})

    def test_spec_id_is_stable_slug(self):
        spec = FaultSpec(point="sweep.unit", action="crash",
                         match=(("key", 8),))
        assert spec.spec_id == "sweep.unit-crash-key=8"


class TestFiring:
    def test_inactive_fire_is_free_noop(self):
        faults.fire("anything", key=1)  # no specs installed

    def test_raise_action_and_exact_times(self):
        faults.install(FaultSpec(point="p", action="raise", exc="OSError",
                                 message="injected io", times=2))
        with pytest.raises(OSError, match="injected io"):
            faults.fire("p")
        with pytest.raises(OSError):
            faults.fire("p")
        faults.fire("p")  # budget exhausted: no-op

    def test_unlimited_times(self):
        faults.install(FaultSpec(point="p", action="raise",
                                 exc="FaultInjected", times=0))
        for _ in range(5):
            with pytest.raises(FaultInjected):
                faults.fire("p")

    def test_point_and_match_filtering(self):
        faults.install(FaultSpec(point="p", action="raise",
                                 match=(("key", 8),)))
        faults.fire("q", key=8)        # wrong point
        faults.fire("p", key=9)        # wrong key
        with pytest.raises(OSError):
            faults.fire("p", key=8)

    def test_stall_action_sleeps(self):
        faults.install(FaultSpec(point="p", action="stall", delay=0.05))
        t0 = time.monotonic()
        faults.fire("p")
        assert time.monotonic() - t0 >= 0.04

    def test_corrupt_action_scribbles_the_file(self, tmp_path):
        path = tmp_path / "entry.pkl"
        path.write_bytes(pickle.dumps({"fine": True}))
        faults.install(FaultSpec(point="cache.get", action="corrupt"))
        faults.fire("cache.get", key="k", path=str(path))
        with pytest.raises(Exception):
            pickle.loads(path.read_bytes())

    def test_marker_budget_is_cross_process_safe(self, tmp_path):
        spec = FaultSpec(point="p", action="raise", times=1,
                         marker=str(tmp_path))
        faults.install(spec)
        with pytest.raises(OSError):
            faults.fire("p")
        faults.fire("p")  # slot file already claimed
        slots = [f for f in os.listdir(tmp_path)
                 if f.startswith(spec.spec_id)]
        assert len(slots) == 1


class TestLifecycle:
    def test_set_specs_and_active(self):
        assert not faults.active()
        spec = FaultSpec(point="p", action="raise")
        faults.set_specs([spec])
        assert faults.active()
        assert faults.active_specs() == (spec,)
        faults.clear()
        assert not faults.active()
        assert faults.active_specs() == ()

    def test_specs_are_picklable_for_pool_shipping(self):
        spec = FaultSpec(point="sweep.unit", action="crash",
                         match=(("key", 8),), marker="/tmp/m")
        assert pickle.loads(pickle.dumps((spec,))) == (spec,)
