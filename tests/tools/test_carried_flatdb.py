"""Carried-miss metrics and the flat pattern database."""

import pytest

from repro.apps.kernels import fig1_interchange, stream_triad
from repro.tools import AnalysisSession, CarriedMisses, FlatDatabase


@pytest.fixture(scope="module")
def fig1_session():
    session = AnalysisSession(fig1_interchange(48, 48))
    session.run()
    return session


class TestCarried:
    def test_outer_loop_carries_spatial_reuse(self, fig1_session):
        prog = fig1_session.program
        carried = fig1_session.carried
        outer = prog.scope_named("I").sid
        assert carried.fraction("L2", outer) > 0.2
        top_sid, _ = carried.top_scopes("L2", 1)[0]
        assert top_sid == outer

    def test_fractions_sum_below_one(self, fig1_session):
        carried = fig1_session.carried
        for level in ("L2", "L3", "TLB"):
            total_frac = sum(
                carried.fraction(level, sid)
                for sid, _ in carried.top_scopes(level, 100)
            )
            assert total_frac <= 1.0 + 1e-9

    def test_breakdown_by_source_sums(self, fig1_session):
        carried = fig1_session.carried
        top_sid, top_misses = carried.top_scopes("L2", 1)[0]
        by_src = carried.breakdown_by_source("L2", top_sid)
        assert sum(by_src.values()) == pytest.approx(top_misses)

    def test_breakdown_by_dest_sums(self, fig1_session):
        carried = fig1_session.carried
        top_sid, top_misses = carried.top_scopes("L2", 1)[0]
        by_dest = carried.breakdown_by_dest("L2", top_sid)
        assert sum(by_dest.values()) == pytest.approx(top_misses)

    def test_render_has_percent_rows(self, fig1_session):
        text = fig1_session.render_carried(["L2"], n=3)
        assert "carrying scope" in text
        assert "%" in text


class TestFlatDatabase:
    def test_rows_cover_all_levels(self, fig1_session):
        db = fig1_session.flatdb
        assert db.rows
        for row in db.rows:
            assert set(row.misses) <= {"L2", "L3", "TLB"}

    def test_top_sorted_descending(self, fig1_session):
        db = fig1_session.flatdb
        top = db.top("L2", 10)
        misses = [r.miss("L2") for r in top]
        assert misses == sorted(misses, reverse=True)

    def test_total_matches_prediction(self, fig1_session):
        db = fig1_session.flatdb
        assert db.total("L3") == pytest.approx(
            fig1_session.prediction.levels["L3"].total)

    def test_cold_rows_excludable(self, fig1_session):
        db = fig1_session.flatdb
        with_cold = db.top("L2", 100, include_cold=True)
        without = db.top("L2", 100, include_cold=False)
        assert len(without) < len(with_cold)
        assert all(not r.is_cold for r in without)

    def test_filters(self, fig1_session):
        db = fig1_session.flatdb
        for row in db.for_array("A"):
            assert row.array == "A"
        prog = fig1_session.program
        inner = prog.scope_named("J").sid
        for row in db.for_dest_scope(inner):
            assert row.dest_sid == inner

    def test_render_top(self, fig1_session):
        text = fig1_session.render_top_patterns("L2", 5)
        assert "carrying scope" in text
        assert "A" in text


class TestSessionLifecycle:
    def test_double_run_rejected(self):
        session = AnalysisSession(stream_triad(256, 1))
        session.run()
        with pytest.raises(RuntimeError):
            session.run()

    def test_results_before_run_rejected(self):
        session = AnalysisSession(stream_triad(256, 1))
        with pytest.raises(RuntimeError):
            _ = session.prediction

    def test_simulate_mode_collects_both(self):
        session = AnalysisSession(stream_triad(512, 2), simulate=True)
        session.run()
        assert session.sim is not None
        # FA-exact workload: prediction should track simulation closely
        sim_l3 = session.sim.totals()["L3"]
        pred_l3 = session.prediction.levels["L3"].total
        assert pred_l3 == pytest.approx(sim_l3, rel=0.15, abs=8)

    def test_scope_tree_render(self):
        session = AnalysisSession(stream_triad(256, 1))
        session.run()
        text = session.render_scope_tree("L2")
        assert "main" in text


class TestXMLExport:
    def test_export_well_formed(self, fig1_session, tmp_path):
        import xml.etree.ElementTree as ET
        path = tmp_path / "out.xml"
        text = fig1_session.export_xml(str(path))
        root = ET.fromstring(text)
        assert root.tag == "LocalityDatabase"
        scopes = root.find("ScopeTree")
        assert scopes is not None and len(list(scopes.iter("Scope"))) >= 3
        patterns = root.find("ReusePatterns")
        assert patterns is not None and len(patterns) > 0
        assert path.read_text() == text

    def test_metrics_have_inclusive_exclusive(self, fig1_session):
        import xml.etree.ElementTree as ET
        root = ET.fromstring(fig1_session.export_xml())
        metric = next(root.iter("Metric"))
        assert "inclusive" in metric.attrib
        assert "exclusive" in metric.attrib
        assert "carried" in metric.attrib


class TestSessionOptions:
    def test_treap_engine_session_matches_default(self):
        from repro.apps.kernels import fig1_interchange
        default = AnalysisSession(fig1_interchange(24, 24))
        default.run()
        treap = AnalysisSession(fig1_interchange(24, 24), engine="treap")
        treap.run()
        assert default.totals() == treap.totals()

    def test_run_param_overrides(self):
        from repro.lang import (MemoryLayout, Var, load, loop, program,
                                routine, stmt)
        lay = MemoryLayout()
        a = lay.array("A", 64)
        prog = program("p", lay, [routine("main", loop(
            "i", 1, "N", stmt(load(a, Var("i")))))], params={"N": 4})
        session = AnalysisSession(prog)
        session.run(N=32)
        assert session.stats.accesses == 32

    def test_fa_model_session(self):
        from repro.apps.kernels import stream_triad
        session = AnalysisSession(stream_triad(512, 2), miss_model="fa",
                                  simulate=True)
        session.run()
        import pytest as _pytest
        assert session.prediction.levels["L3"].total == _pytest.approx(
            session.sim.totals()["L3"], abs=4)
