"""Fault-injection suite: the execution layer under crashes and stalls.

Every scenario here asserts two things: the run *survives* the injected
fault, and the results are *byte-identical* to an undisturbed run — the
resilience layer steers scheduling only, never answers.
"""

import multiprocessing
import os
import pickle

import pytest

from repro.apps.sweep3d import SweepParams, build_original
from repro.testing import faults
from repro.testing.faults import FaultSpec
from repro.tools import AnalysisCache, AnalysisSession, SweepTask, run_sweep
from repro.tools.resilience import RetryPolicy, SweepCheckpoint
from repro.tools.sweep import build_sweep_manifest, render_sweep_manifest


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


#: Fast policy for tests: retries are immediate, no deadline.
FAST = RetryPolicy(retries=2, base_delay=0.01, jitter=0.0)


def _analyze_tasks(meshes=(4, 5)):
    return [SweepTask(key=n, builder=build_original,
                      args=(SweepParams(n=n, mm=3, nm=2, noct=1),),
                      mode="analyze")
            for n in meshes]


def _states(outcomes):
    return [pickle.dumps(out.state) for out in outcomes]


class TestTransientRetry:
    def test_transient_raise_retried_to_success(self, obs_on):
        clean = run_sweep(_analyze_tasks((4,)))
        faults.install(FaultSpec(point="sweep.unit", action="raise",
                                 exc="OSError", message="torn read",
                                 match=(("key", 4),), times=1))
        outcomes = run_sweep(_analyze_tasks((4,)), retry=FAST)
        assert not outcomes[0].failed
        assert outcomes[0].retries == 1
        assert _states(outcomes) == _states(clean)
        snap = obs_on.snapshot()
        assert snap["counters"]["resil.retries"] == 1
        assert snap["counters"]["sweep.worker_failures"] == 1

    def test_budget_exhaustion_reports_transient_failure(self):
        faults.install(FaultSpec(point="sweep.unit", action="raise",
                                 exc="OSError", match=(("key", 4),),
                                 times=0))
        out = run_sweep(_analyze_tasks((4,)),
                        retry=RetryPolicy(retries=1, base_delay=0.01,
                                          jitter=0.0))[0]
        assert out.failed
        assert out.error_kind == "transient"
        assert out.retries == 1

    def test_fatal_failure_not_retried(self):
        faults.install(FaultSpec(point="sweep.unit", action="raise",
                                 exc="ValueError", match=(("key", 4),),
                                 times=0))
        out = run_sweep(_analyze_tasks((4,)), retry=FAST)[0]
        assert out.failed
        assert out.error_kind == "fatal"
        assert out.retries == 0  # never retried


class TestDeadlineRetry:
    def test_stalled_unit_times_out_then_succeeds(self, obs_on):
        clean = run_sweep(_analyze_tasks((4,)))
        faults.install(FaultSpec(point="sweep.unit", action="stall",
                                 delay=5.0, match=(("key", 4),), times=1))
        policy = RetryPolicy(retries=2, base_delay=0.01, jitter=0.0,
                             timeout=0.3)
        outcomes = run_sweep(_analyze_tasks((4,)), retry=policy)
        assert not outcomes[0].failed
        assert outcomes[0].retries == 1
        assert _states(outcomes) == _states(clean)
        snap = obs_on.snapshot()
        assert snap["counters"]["resil.timeouts"] == 1
        assert snap["counters"]["resil.retries"] == 1

    def test_deadline_failure_is_transient_kind(self):
        faults.install(FaultSpec(point="sweep.unit", action="stall",
                                 delay=5.0, match=(("key", 4),), times=0))
        out = run_sweep(_analyze_tasks((4,)),
                        retry=RetryPolicy(retries=0, timeout=0.2))[0]
        assert out.failed
        assert out.error_kind == "transient"
        assert "DeadlineExceeded" in out.error


class TestPoolCrashRecovery:
    def test_worker_crash_rebuilds_pool_and_completes(self, obs_on,
                                                      tmp_path):
        clean = run_sweep(_analyze_tasks((4, 5, 6)))
        # the marker directory makes the crash fire exactly once across
        # the original worker AND the rebuilt pool's workers
        faults.install(FaultSpec(point="sweep.unit", action="crash",
                                 match=(("key", 5),), times=1,
                                 marker=str(tmp_path / "m")))
        outcomes = run_sweep(_analyze_tasks((4, 5, 6)), jobs=2,
                             retry=FAST)
        assert [out.failed for out in outcomes] == [False, False, False]
        assert _states(outcomes) == _states(clean)
        snap = obs_on.snapshot()
        assert snap["counters"]["resil.pool_rebuilds"] >= 1
        assert snap["counters"]["resil.retries"] >= 1

    def test_repeat_crasher_reported_as_poison(self, tmp_path):
        # every worker attempt crashes: both units exhaust their retry
        # budget through pool rebuilds and surface as poison, not a hang
        faults.install(FaultSpec(point="sweep.unit", action="crash",
                                 match=(("unit", "task"),), times=0,
                                 marker=str(tmp_path / "m")))
        outcomes = run_sweep(_analyze_tasks((4, 5)), jobs=2,
                             retry=RetryPolicy(retries=1, base_delay=0.01,
                                               jitter=0.0))
        for bad in outcomes:
            assert bad.failed
            assert bad.error_kind == "poison"
            assert "BrokenProcessPool" in bad.error
            assert bad.retries == 1  # budget spent before giving up


def _crashing_sweep_child(checkpoint: str, marker: str) -> None:
    """Child body: a sweep that dies mid-run (killed on its 2nd unit)."""
    faults.install(FaultSpec(point="sweep.unit", action="crash",
                             match=(("key", 5),), marker=marker))
    run_sweep(_analyze_tasks((4, 5)), jobs=1, checkpoint=checkpoint)


class TestCheckpointResume:
    def test_completed_units_restored_not_recomputed(self, obs_on,
                                                     tmp_path):
        ckpt_path = str(tmp_path / "ck.jsonl")
        first = run_sweep(_analyze_tasks((4, 5)), checkpoint=ckpt_path)
        assert len(SweepCheckpoint(ckpt_path).load()) == 2
        second = run_sweep(_analyze_tasks((4, 5)), checkpoint=ckpt_path)
        assert _states(second) == _states(first)
        snap = obs_on.snapshot()
        assert snap["counters"]["resil.checkpoint_restored"] == 2

    def test_recipe_edit_invalidates_stale_units(self, tmp_path):
        ckpt_path = str(tmp_path / "ck.jsonl")
        run_sweep(_analyze_tasks((4,)), checkpoint=ckpt_path)
        outcomes = run_sweep(_analyze_tasks((5,)), checkpoint=ckpt_path)
        assert not outcomes[0].failed
        assert not outcomes[0].from_cache
        assert len(SweepCheckpoint(ckpt_path).load()) == 2

    def test_killed_sweep_resumes_byte_identical(self, tmp_path):
        """The acceptance scenario: kill mid-run, resume, same bytes."""
        ckpt_path = str(tmp_path / "ck.jsonl")
        marker = str(tmp_path / "m")
        child = multiprocessing.Process(
            target=_crashing_sweep_child, args=(ckpt_path, marker))
        child.start()
        child.join(timeout=120)
        assert child.exitcode == 70  # died on the injected crash
        journal = SweepCheckpoint(ckpt_path).load()
        assert len(journal) == 1  # unit 4 completed, unit 5 never did
        clean = run_sweep(_analyze_tasks((4, 5)))
        resumed = run_sweep(_analyze_tasks((4, 5)), checkpoint=ckpt_path)
        assert [out.failed for out in resumed] == [False, False]
        assert _states(resumed) == _states(clean)
        assert [out.totals for out in resumed] == [
            out.totals for out in clean]
        assert len(SweepCheckpoint(ckpt_path).load()) == 2

    @pytest.mark.slow
    def test_killed_parallel_sharded_sweep_resumes(self, tmp_path):
        """Nightly chaos leg: crash a sharded parallel sweep, resume."""
        tasks = [SweepTask(key=n, builder=build_original,
                           args=(SweepParams(n=n, mm=3, nm=2, noct=1),),
                           mode="analyze", shards=2)
                 for n in (4, 5, 6)]
        ckpt_path = str(tmp_path / "ck.jsonl")
        clean = run_sweep(tasks)
        faults.install(FaultSpec(point="sweep.unit", action="crash",
                                 match=(("key", 5), ("index", 1)),
                                 times=1, marker=str(tmp_path / "m")))
        crashed = run_sweep(tasks, jobs=2, retry=FAST,
                            checkpoint=ckpt_path)
        assert [out.failed for out in crashed] == [False] * 3
        assert _states(crashed) == _states(clean)
        faults.clear()
        resumed = run_sweep(tasks, checkpoint=ckpt_path)
        assert _states(resumed) == _states(clean)


class TestCacheQuarantine:
    def test_corrupt_entry_quarantined_once_and_recomputed(self, obs_on,
                                                           tmp_path):
        params = SweepParams(n=4, mm=3, nm=2, noct=1)
        first = AnalysisSession(build_original(params),
                                cache=AnalysisCache(str(tmp_path)))
        first.run()
        baseline = pickle.dumps(first.analyzer.dump_state())
        # scribble over the entry at its next read, exactly once
        faults.install(FaultSpec(point="cache.get", action="corrupt",
                                 times=1))
        cache = AnalysisCache(str(tmp_path))
        second = AnalysisSession(build_original(params), cache=cache)
        second.run()
        assert not second.from_cache  # damaged entry degraded to a miss
        assert pickle.dumps(second.analyzer.dump_state()) == baseline
        assert cache.quarantined == 1
        qdir = os.path.join(str(tmp_path), AnalysisCache.QUARANTINE_DIR)
        assert len(os.listdir(qdir)) == 1
        assert obs_on.snapshot()["counters"]["cache.quarantined"] == 1
        # the recompute's put repaired the slot: third run is a hit
        third = AnalysisSession(build_original(params),
                                cache=AnalysisCache(str(tmp_path)))
        third.run()
        assert third.from_cache
        assert pickle.dumps(third.analyzer.dump_state()) == baseline


class TestEngineFallback:
    def test_numpy_failure_falls_back_to_fenwick(self, obs_on):
        params = SweepParams(n=4, mm=3, nm=2, noct=1)
        clean = AnalysisSession(build_original(params), engine="fenwick")
        clean.run()
        faults.install(FaultSpec(point="session.run", action="raise",
                                 exc="RuntimeError",
                                 message="engine blew up", times=1))
        degraded = AnalysisSession(build_original(params), engine="numpy")
        degraded.run()
        assert degraded.fallback == {
            "from": "numpy", "to": "fenwick",
            "error": "RuntimeError: engine blew up"}
        assert (pickle.dumps(degraded.analyzer.dump_state())
                == pickle.dumps(clean.analyzer.dump_state()))
        assert degraded.totals() == clean.totals()
        manifest = degraded.manifest.to_dict()
        assert manifest["fallback"]["from"] == "numpy"
        assert "FALLBACK" in degraded.manifest.render()
        assert obs_on.snapshot()["counters"]["resil.fallbacks"] == 1

    def test_sharded_failure_falls_back_sequentially(self):
        params = SweepParams(n=4, mm=3, nm=2, noct=1)
        clean = AnalysisSession(build_original(params))
        clean.run()
        faults.install(FaultSpec(point="session.run", action="raise",
                                 exc="OSError", times=1))
        degraded = AnalysisSession(build_original(params), shards=3)
        degraded.run()
        assert degraded.fallback is not None
        assert degraded.fallback["from"] == "fenwick+shards=3"
        assert (pickle.dumps(degraded.analyzer.dump_state())
                == pickle.dumps(clean.analyzer.dump_state()))

    def test_plain_fenwick_has_no_fallback_and_raises(self):
        faults.install(FaultSpec(point="session.run", action="raise",
                                 exc="RuntimeError", times=1))
        with pytest.raises(RuntimeError):
            AnalysisSession(build_original(
                SweepParams(n=4, mm=3, nm=2, noct=1))).run()

    def test_manifest_fallback_round_trips(self):
        from repro.obs.manifest import RunManifest
        m = RunManifest(program="p", fallback={"from": "numpy",
                                               "to": "fenwick",
                                               "error": "E: x"})
        again = RunManifest.from_dict(m.to_dict())
        assert again.fallback == m.fallback
        clean = RunManifest.from_dict(RunManifest(program="p").to_dict())
        assert clean.fallback is None


class TestMeasureShardWarningDedupe:
    def test_single_warning_for_many_tasks(self, caplog):
        tasks = [SweepTask(key=f"m{n}", builder=build_original,
                           args=(SweepParams(n=n, mm=3, nm=2, noct=1),),
                           mode="measure", shards=3,
                           measure_kwargs={"name": f"m{n}"})
                 for n in (4, 5)]
        with caplog.at_level("WARNING", logger="repro.tools.sweep"):
            outcomes = run_sweep(tasks)
        warnings = [r for r in caplog.records
                    if "ignored in measure mode" in r.getMessage()]
        assert len(warnings) == 1
        assert "'m4'" in warnings[0].getMessage()
        assert all(not out.failed for out in outcomes)


class TestStructuredOutcomeFields:
    def test_failure_rows_render_kind_retries_duration(self):
        faults.install(FaultSpec(point="sweep.unit", action="raise",
                                 exc="ValueError", match=(("key", 4),),
                                 times=0))
        outcomes = run_sweep(_analyze_tasks((4, 5)), retry=FAST)
        manifest = build_sweep_manifest(outcomes, wall_time=0.5)
        bad = manifest["task_summaries"][0]
        assert bad["error_kind"] == "fatal"
        assert bad["retries"] == 0
        assert bad["duration_s"] >= 0
        good = manifest["task_summaries"][1]
        assert "error_kind" not in good
        assert good["duration_s"] > 0
        assert manifest["resilience"]["failure_kinds"] == {"fatal": 1}
        text = render_sweep_manifest(manifest)
        assert "FAILED [fatal] ValueError" in text
        assert "failure kinds: fatal=1" in text

    def test_retry_totals_roll_up(self):
        faults.install(FaultSpec(point="sweep.unit", action="raise",
                                 exc="OSError", match=(("key", 4),),
                                 times=1))
        outcomes = run_sweep(_analyze_tasks((4,)), retry=FAST)
        manifest = build_sweep_manifest(outcomes)
        assert manifest["resilience"]["retries"] == 1
        assert manifest["task_summaries"][0]["retries"] == 1
        assert "retries: 1" in render_sweep_manifest(manifest)
