"""Command-line interface."""

import json
import logging
import os

import pytest

from repro import obs
from repro.cli import build_parser, main


@pytest.fixture
def reset_obs():
    """Restore the obs-disabled default after CLI runs that enable it."""
    yield
    obs.set_enabled(False)
    obs.registry().reset()
    obs.tracer().reset()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "fig1"])
        args_gtc = build_parser().parse_args(
            ["analyze", "gtc", "--micell", "3", "--level", "L3"])
        assert args.workload == "fig1"
        assert args.level == "L2"
        assert args_gtc.micell == 3
        assert args_gtc.level == "L3"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "bogus"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sweep3d" in out and "gtc" in out
        assert "block6+dimic" in out

    def test_analyze_fig2(self, capsys):
        assert main(["analyze", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "predicted misses" in out
        assert "carrying scope" in out
        assert "fragmentation" in out

    def test_analyze_with_xml(self, tmp_path, capsys):
        xml = tmp_path / "db.xml"
        assert main(["analyze", "fig1", "--xml", str(xml)]) == 0
        assert xml.exists()
        assert "<LocalityDatabase" in xml.read_text()

    def test_measure_sweep3d(self, capsys):
        assert main(["measure", "sweep3d", "--mesh", "6"]) == 0
        out = capsys.readouterr().out
        assert "block6+dimic" in out
        assert "speedup" in out

    def test_measure_gtc(self, capsys):
        assert main(["measure", "gtc", "--micell", "2"]) == 0
        out = capsys.readouterr().out
        assert "+zion transpose" in out
        assert "+pushi tiling/fusion" in out

    def test_measure_parallel_jobs(self, capsys):
        assert main(["measure", "sweep3d", "--mesh", "4", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["measure", "sweep3d", "--mesh", "4", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial  # workers change nothing but wall clock

    def test_analyze_cache_roundtrip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["analyze", "fig1"]) == 0
        first = capsys.readouterr().out
        assert main(["analyze", "fig1"]) == 0   # cache hit
        second = capsys.readouterr().out
        assert second == first
        assert any(f.endswith(".pkl") for _, _, fs in os.walk(str(tmp_path))
                   for f in fs)

    def test_analyze_no_cache_writes_nothing(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["analyze", "fig1", "--no-cache"]) == 0
        assert "predicted misses" in capsys.readouterr().out
        assert not any(fs for _, _, fs in os.walk(str(tmp_path)))


class TestSweepCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep", "sweep3d"])
        assert args.mesh == [6, 8]
        assert args.retries == 2
        assert args.timeout is None
        assert not args.resume

    def test_sweep_smoke(self, capsys):
        assert main(["sweep", "sweep3d", "--mesh", "4"]) == 0
        captured = capsys.readouterr()
        assert "sweep3d-n4" in captured.out
        assert "ok" in captured.out
        assert "sweeping 1 sweep3d task(s)" in captured.err

    def test_manifest_out_and_stats_view(self, tmp_path, capsys,
                                         reset_obs):
        path = str(tmp_path / "sweep.json")
        assert main(["sweep", "sweep3d", "--mesh", "4",
                     "--manifest-out", path]) == 0
        capsys.readouterr()
        data = json.load(open(path))
        assert data["kind"] == "sweep"
        assert data["tasks"] == 1
        assert data["failures"] == 0
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "sweep manifest: 1 task(s), 0 failed" in out
        assert "sweep3d-n4" in out

    def test_resume_requires_checkpoint_flag(self):
        with pytest.raises(SystemExit, match="requires --checkpoint"):
            main(["sweep", "sweep3d", "--resume"])

    def test_existing_checkpoint_requires_resume(self, tmp_path):
        ckpt = tmp_path / "ck.jsonl"
        ckpt.write_text("{}\n")
        with pytest.raises(SystemExit, match="already exists"):
            main(["sweep", "sweep3d", "--checkpoint", str(ckpt)])

    def test_resume_without_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="nothing to resume"):
            main(["sweep", "sweep3d", "--resume",
                  "--checkpoint", str(tmp_path / "missing.jsonl")])

    def test_checkpoint_then_resume_roundtrip(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ck.jsonl")
        assert main(["sweep", "sweep3d", "--mesh", "4",
                     "--checkpoint", ckpt]) == 0
        first = capsys.readouterr().out
        assert main(["sweep", "sweep3d", "--mesh", "4",
                     "--checkpoint", ckpt, "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert resumed == first  # restored units render identically


class TestObservability:
    def test_analyze_profile_prints_manifest(self, capsys, reset_obs):
        assert main(["analyze", "fig1", "--no-cache", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "run manifest: fig1a" in out
        assert "execute" in out
        assert "accesses=" in out
        assert "analyzer.batch_events" in out
        assert "batch.fallback_loops" in out

    def test_profile_with_cache_shows_hit_miss(self, tmp_path, monkeypatch,
                                               capsys, reset_obs):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["analyze", "fig1", "--profile"]) == 0
        assert "cache: miss" in capsys.readouterr().out
        assert main(["analyze", "fig1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cache: hit" in out
        assert "cache.hits" in out

    def test_manifest_out_and_stats_roundtrip(self, tmp_path, capsys,
                                              reset_obs):
        path = str(tmp_path / "run.json")
        assert main(["analyze", "fig1", "--no-cache",
                     "--manifest-out", path]) == 0
        capsys.readouterr()
        data = json.load(open(path))
        assert data["program"] == "fig1a"
        assert data["events"]["accesses"] > 0
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "run manifest: fig1a" in out
        assert "execute" in out

    def test_trace_out_writes_jsonl_spans(self, tmp_path, capsys,
                                          reset_obs):
        path = str(tmp_path / "run.trace.jsonl")
        assert main(["analyze", "fig1", "--no-cache",
                     "--trace-out", path]) == 0
        spans = [json.loads(line)
                 for line in open(path).read().splitlines()]
        names = [s["name"] for s in spans]
        assert "session.run" in names
        assert "execute" in names

    def test_profile_output_identical_reports(self, tmp_path, monkeypatch,
                                              capsys, reset_obs):
        # reports themselves must not change when obs is on
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c1"))
        assert main(["analyze", "fig2"]) == 0
        plain = capsys.readouterr().out
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c2"))
        assert main(["analyze", "fig2", "--profile"]) == 0
        profiled = capsys.readouterr().out
        assert profiled.startswith(plain)
        assert "run manifest" in profiled[len(plain):]

    def test_verbosity_flags_set_logger_level(self, reset_obs):
        assert main(["-v", "list"]) == 0
        assert logging.getLogger("repro").level == logging.INFO
        assert main(["-vv", "list"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        assert main(["-q", "list"]) == 0
        assert logging.getLogger("repro").level == logging.ERROR
        assert main(["list"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING


class TestStaticCli:
    def test_analyze_static_engine(self, capsys):
        assert main(["analyze", "sweep3d", "--mesh", "6",
                     "--engine", "static", "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "estimating sweep3d-original analytically" in captured.err
        assert "predicted misses" in captured.out

    def test_validate_single_workload(self, capsys):
        assert main(["validate", "triad",
                     "--param", "n=64", "--param", "steps=2"]) == 0
        out = capsys.readouterr().out
        assert "triad(n=64, steps=2): PASS" in out
        assert "1/1 validation size(s) within tolerance" in out

    def test_validate_bad_param(self):
        with pytest.raises(SystemExit):
            main(["validate", "triad", "--param", "n64"])

    def test_validate_impossible_tolerance_fails(self, capsys):
        # sweep3d is approximate, so a zero tolerance must exit nonzero
        assert main(["validate", "sweep3d", "--param", "mesh=6",
                     "--tolerance", "0"]) == 1
        assert "FAIL" in capsys.readouterr().out
