"""Command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "fig1"])
        args_gtc = build_parser().parse_args(
            ["analyze", "gtc", "--micell", "3", "--level", "L3"])
        assert args.workload == "fig1"
        assert args.level == "L2"
        assert args_gtc.micell == 3
        assert args_gtc.level == "L3"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "bogus"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sweep3d" in out and "gtc" in out
        assert "block6+dimic" in out

    def test_analyze_fig2(self, capsys):
        assert main(["analyze", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "predicted misses" in out
        assert "carrying scope" in out
        assert "fragmentation" in out

    def test_analyze_with_xml(self, tmp_path, capsys):
        xml = tmp_path / "db.xml"
        assert main(["analyze", "fig1", "--xml", str(xml)]) == 0
        assert xml.exists()
        assert "<LocalityDatabase" in xml.read_text()

    def test_measure_sweep3d(self, capsys):
        assert main(["measure", "sweep3d", "--mesh", "6"]) == 0
        out = capsys.readouterr().out
        assert "block6+dimic" in out
        assert "speedup" in out

    def test_measure_gtc(self, capsys):
        assert main(["measure", "gtc", "--micell", "2"]) == 0
        out = capsys.readouterr().out
        assert "+zion transpose" in out
        assert "+pushi tiling/fusion" in out

    def test_measure_parallel_jobs(self, capsys):
        assert main(["measure", "sweep3d", "--mesh", "4", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["measure", "sweep3d", "--mesh", "4", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial  # workers change nothing but wall clock

    def test_analyze_cache_roundtrip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["analyze", "fig1"]) == 0
        first = capsys.readouterr().out
        assert main(["analyze", "fig1"]) == 0   # cache hit
        second = capsys.readouterr().out
        assert second == first
        assert any(f.endswith(".pkl") for _, _, fs in os.walk(str(tmp_path))
                   for f in fs)

    def test_analyze_no_cache_writes_nothing(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["analyze", "fig1", "--no-cache"]) == 0
        assert "predicted misses" in capsys.readouterr().out
        assert not any(fs for _, _, fs in os.walk(str(tmp_path)))
