"""Self-contained HTML report."""

import re

import pytest

from repro.apps.kernels import fig1_interchange, fig2_fragmentation
from repro.tools import AnalysisSession, render_html


@pytest.fixture(scope="module")
def session():
    s = AnalysisSession(fig2_fragmentation(64, 48))
    s.run()
    return s


class TestHTMLReport:
    def test_sections_present(self, session):
        text = render_html(session)
        for section in ("Predicted misses", "Scope tree",
                        "Scopes carrying the most misses",
                        "Fragmentation misses by array",
                        "Top reuse patterns",
                        "Recommended transformations"):
            assert section in text

    def test_wellformed_tags(self, session):
        text = render_html(session)
        for tag in ("table", "tr", "td", "th", "ul", "li", "h2", "body",
                    "html"):
            assert text.count(f"<{tag}") == text.count(f"</{tag}>"), tag

    def test_escaping(self):
        """Program and array names are HTML-escaped."""
        from repro.lang import (MemoryLayout, Var, load, loop, program,
                                routine, stmt)
        lay = MemoryLayout()
        a = lay.array("A<b>&x", 64, 64)
        i, j = Var("i"), Var("j")
        nest = loop("t", 1, 2,
                    loop("j", 1, 64,
                         loop("i", 1, 64, stmt(load(a, i, j)), name="I"),
                         name="J"),
                    name="T")
        prog = program("p<script>", lay, [routine("main", nest)])
        s = AnalysisSession(prog)
        s.run()
        text = render_html(s)
        assert "<script>" not in text
        assert "p&lt;script&gt;" in text
        assert "A&lt;b&gt;&amp;x" in text
        assert "A<b>" not in text

    def test_fragmentation_table_lists_a(self, session):
        text = render_html(session)
        frag_section = text.split("Fragmentation misses by array")[1]
        assert ">A<" in frag_section

    def test_write_to_file(self, session, tmp_path):
        path = tmp_path / "report.html"
        text = session.export_html(str(path))
        assert path.read_text() == text
        assert text.startswith("<!DOCTYPE html>")

    def test_cli_html_flag(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "r.html"
        assert main(["analyze", "fig2", "--html", str(path)]) == 0
        assert path.exists()
        assert "Recommended transformations" in path.read_text()
