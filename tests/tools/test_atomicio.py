"""Atomic write helpers: all-or-nothing file replacement."""

import os

import pytest

from repro.tools.atomicio import atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        path = str(tmp_path / "out.bin")
        assert atomic_write_bytes(path, b"\x00\x01payload") == path
        assert open(path, "rb").read() == b"\x00\x01payload"

    def test_writes_text(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "héllo\n")
        assert open(path, encoding="utf-8").read() == "héllo\n"

    def test_replaces_existing_content(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert open(path).read() == "new"

    def test_no_tmp_litter_on_success(self, tmp_path):
        atomic_write_text(str(tmp_path / "a.json"), "{}")
        atomic_write_bytes(str(tmp_path / "b.bin"), b"x", fsync=True)
        assert [f for f in os.listdir(str(tmp_path))
                if f.startswith(".tmp-")] == []

    def test_creates_missing_parent_directories(self, tmp_path):
        target = tmp_path / "jobs" / "abc" / "status.json"
        atomic_write_text(str(target), "{}")
        assert target.read_text() == "{}"

    def test_interrupted_write_leaves_old_content(self, tmp_path):
        """A writer dying mid-write must never tear the destination."""
        path = str(tmp_path / "report.html")
        atomic_write_text(path, "<html>intact</html>")
        # the crash lands inside the tmp-file write (str has no buffer
        # interface); the destination and directory must be untouched
        with pytest.raises(TypeError):
            atomic_write_bytes(path, "not-bytes")
        assert open(path).read() == "<html>intact</html>"
        assert [f for f in os.listdir(str(tmp_path))
                if f.startswith(".tmp-")] == []
