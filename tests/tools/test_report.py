"""Report generators: fragmentation (Fig 9), irregular, Table II views."""

import pytest

from repro.apps.kernels import fig2_fragmentation, irregular_gather
from repro.tools import AnalysisSession
from repro.tools.report import (
    dest_breakdown, fragmentation_misses, irregular_misses, irregular_total,
    render_fragmentation, render_table2,
)


@pytest.fixture(scope="module")
def fig2_session():
    session = AnalysisSession(fig2_fragmentation(64, 48))
    session.run()
    return session


class TestFragmentationReport:
    def test_only_fragmented_arrays_charged(self, fig2_session):
        per_array = fragmentation_misses(
            fig2_session.prediction, fig2_session.fragmentation, "L2")
        assert "A" in per_array
        assert per_array.get("B", 0.0) == 0.0

    def test_frag_misses_half_of_a_misses(self, fig2_session):
        """frag factor 0.5 charges half of A's misses to fragmentation."""
        per_array = fragmentation_misses(
            fig2_session.prediction, fig2_session.fragmentation, "L2")
        a_total = fig2_session.prediction.levels["L2"].by_array()["A"]
        assert per_array["A"] == pytest.approx(0.5 * a_total)

    def test_render(self, fig2_session):
        text = render_fragmentation(
            fig2_session.prediction, fig2_session.fragmentation, "L2")
        assert "A" in text
        assert "0.50" in text


class TestIrregularReport:
    def test_gather_counted_irregular(self):
        session = AnalysisSession(irregular_gather(2048, 4096))
        session.run()
        per_pair = irregular_misses(session.prediction, session.static, "L2")
        assert per_pair
        total = irregular_total(session.prediction, session.static, "L2")
        # the gather loop dominates this kernel's misses
        assert total > 0.5 * session.prediction.levels["L2"].total - \
            session.prediction.levels["L2"].cold

    def test_regular_kernel_has_none(self, fig2_session):
        assert irregular_total(
            fig2_session.prediction, fig2_session.static, "L2") == 0.0


class TestTable2View:
    def test_breakdown_rows_sorted(self, fig2_session):
        rows = dest_breakdown(fig2_session.prediction, "L2")
        totals = [sum(c.values()) for _sid, _arr, c in rows]
        assert totals == sorted(totals, reverse=True)

    def test_render_contains_all_and_carriers(self, fig2_session):
        text = render_table2(fig2_session.prediction, "L2")
        assert "ALL" in text
        assert "%" in text
