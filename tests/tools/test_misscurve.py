"""Miss curves (the Mattson one-pass evaluation, paper reference [16])."""

import pytest

from repro.apps.kernels import stream_triad
from repro.core import ReuseAnalyzer
from repro.lang import run_program
from repro.sim import SetAssocCache
from repro.tools.misscurve import (
    miss_curve, render_curve, working_set_knees,
)


@pytest.fixture(scope="module")
def triad_db():
    analyzer = ReuseAnalyzer({"line": 64})
    run_program(stream_triad(2048, 2), analyzer)
    return analyzer.db("line")


class TestCurve:
    def test_non_increasing(self, triad_db):
        curve = miss_curve(triad_db, [2 ** k for k in range(6, 22)])
        values = [m for _c, m in curve]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_floor_is_compulsory(self, triad_db):
        (_c, floor) = miss_curve(triad_db, [1 << 24])[0]
        lines = 3 * 2048 * 8 // 64
        assert floor == pytest.approx(lines, rel=0.01)

    def test_matches_fa_simulator_at_each_capacity(self, triad_db):
        """The curve point == an actual FA-LRU simulation of that size."""
        for capacity in (4 * 1024, 16 * 1024, 64 * 1024):
            sim = SetAssocCache(capacity, 64, capacity // 64)
            run_program(stream_triad(2048, 2), _SimAdapter(sim))
            (_c, predicted) = miss_curve(triad_db, [capacity])[0]
            assert predicted == pytest.approx(sim.misses, abs=2)

    def test_knee_at_working_set(self, triad_db):
        """Triad's working set is 3n*8 = 48KB: the curve drops there."""
        knees = working_set_knees(triad_db)
        assert knees
        assert any(32 * 1024 <= k <= 128 * 1024 for k in knees)

    def test_render(self, triad_db):
        text = render_curve(triad_db, annotate={"L2": 4096, "L3": 32768})
        assert "miss curve" in text
        assert "<- L2" in text and "<- L3" in text
        assert "#" in text


class _SimAdapter:
    def __init__(self, cache):
        self.cache = cache

    def enter_scope(self, sid):
        pass

    def exit_scope(self, sid):
        pass

    def access(self, rid, addr, is_store):
        self.cache.access(addr)
