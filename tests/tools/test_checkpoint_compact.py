"""Checkpoint journal compaction: bounded growth, resume-identical."""

import json
import os

import pytest

from repro.tools.resilience import CHECKPOINT_VERSION, SweepCheckpoint


def _lines(path):
    return open(path, encoding="utf-8").read().splitlines()


class TestCompaction:
    def test_rewrites_when_stale_lines_dominate(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        ckpt = SweepCheckpoint(path)
        # one live unit journalled three times (think: resumed sweeps
        # re-recording) -> 3 lines > COMPACT_FACTOR * 1 -> auto-compact
        for generation in range(3):
            ckpt.record("unit-a" * 8, "spec", {"gen": generation})
        lines = _lines(path)
        assert json.loads(lines[0])["version"] == CHECKPOINT_VERSION
        assert len(lines) == 2  # header + one live line
        restored = ckpt.restore("unit-a" * 8,
                                ckpt.load()["unit-a" * 8])
        assert restored == {"gen": 2}  # the latest payload won

    def test_no_compaction_while_lines_are_live(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        ckpt = SweepCheckpoint(path)
        for i in range(6):
            ckpt.record(f"unit-{i:02d}" + "x" * 56, f"s{i}", {"i": i})
        assert len(_lines(path)) == 7  # header + 6 distinct units

    def test_resume_mapping_survives_compaction(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        ckpt = SweepCheckpoint(path)
        for i in range(4):
            ckpt.record(f"unit-{i}" + "y" * 57, f"s{i}", {"i": i})
        ckpt.record("unit-0" + "y" * 57, "s0", {"i": 0, "retry": True})
        before = ckpt.load()
        dropped = ckpt.compact()
        assert dropped >= 1
        after = SweepCheckpoint(path).load()
        assert after == before
        restored = ckpt.restore("unit-0" + "y" * 57,
                                after["unit-0" + "y" * 57])
        assert restored == {"i": 0, "retry": True}

    def test_explicit_compact_reports_dropped(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        big = SweepCheckpoint(path)
        big.COMPACT_FACTOR = 10 ** 9  # disable auto-compaction
        for generation in range(5):
            big.record("unit-z" * 8, "spec", {"g": generation})
        assert len(_lines(path)) == 6
        assert big.compact() == 4
        assert len(_lines(path)) == 2
        assert big.compact() == 0  # idempotent

    def test_compact_leaves_no_tmp_litter(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        ckpt = SweepCheckpoint(path)
        for generation in range(3):
            ckpt.record("unit-a" * 8, "spec", {"g": generation})
        leftovers = [f for f in os.listdir(str(tmp_path))
                     if f.startswith(".tmp-")]
        assert leftovers == []

    def test_compact_empty_journal(self, tmp_path):
        ckpt = SweepCheckpoint(str(tmp_path / "never-written.ckpt"))
        assert ckpt.compact() == 0

    def test_compacted_journal_tolerates_later_torn_line(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        ckpt = SweepCheckpoint(path)
        for generation in range(3):
            ckpt.record("unit-a" * 8, "spec", {"g": generation})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"unit": "tor')  # crash mid-append
        assert SweepCheckpoint(path).load() == {
            "unit-a" * 8: ckpt.load()["unit-a" * 8]}

    def test_counter_increments(self, tmp_path, obs_on):
        ckpt = SweepCheckpoint(str(tmp_path / "sweep.ckpt"))
        for generation in range(3):
            ckpt.record("unit-a" * 8, "spec", {"g": generation})
        counters = obs_on.snapshot()["counters"]
        assert counters.get("resil.checkpoint_compactions", 0) >= 1
