"""On-disk analysis cache: content addressing and session integration."""

import os
import pickle

import pytest

from repro.apps.kernels import fig1_interchange, stream_triad
from repro.model import MachineConfig
from repro.tools import AnalysisCache, AnalysisSession, program_fingerprint

CFG = MachineConfig.scaled_itanium2()


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        assert (program_fingerprint(fig1_interchange(8, 8))
                == program_fingerprint(fig1_interchange(8, 8)))

    def test_sensitive_to_shape(self):
        assert (program_fingerprint(fig1_interchange(8, 8))
                != program_fingerprint(fig1_interchange(8, 12)))

    def test_sensitive_to_program(self):
        assert (program_fingerprint(fig1_interchange(8, 8))
                != program_fingerprint(stream_triad(8, 1)))


class TestAnalysisCache:
    def test_roundtrip(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        key = cache.key_for(fig1_interchange(8, 8), {}, CFG, "sa", "fenwick")
        assert cache.get(key) is None
        assert key not in cache
        cache.put(key, {"hello": [1, 2, 3]})
        assert key in cache
        assert cache.get(key) == {"hello": [1, 2, 3]}
        assert len(cache) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_key_sensitivity(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        prog = fig1_interchange(8, 8)
        base = cache.key_for(prog, {}, CFG, "sa", "fenwick")
        assert cache.key_for(prog, {"n": 9}, CFG, "sa", "fenwick") != base
        assert cache.key_for(prog, {}, CFG, "fa", "fenwick") != base
        assert cache.key_for(prog, {}, CFG, "sa", "treap") != base
        assert cache.key_for(prog, {}, MachineConfig.itanium2(),
                             "sa", "fenwick") != base
        assert cache.key_for(fig1_interchange(8, 12), {}, CFG,
                             "sa", "fenwick") != base
        # and it is deterministic
        assert cache.key_for(fig1_interchange(8, 8), {}, CFG,
                             "sa", "fenwick") == base

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        key = "ab" + "0" * 62
        cache.put(key, {"ok": True})
        with open(cache._path(key), "wb") as fh:
            fh.write(b"not a pickle")
        assert cache.get(key) is None

    def test_truncated_entry_counts_corrupt_and_warns(self, tmp_path,
                                                      caplog, obs_on):
        cache = AnalysisCache(str(tmp_path))
        key = "ab" + "0" * 62
        cache.put(key, {"payload": list(range(1000))})
        path = cache._path(key)
        with open(path, "rb") as fh:
            whole = fh.read()
        with open(path, "wb") as fh:
            fh.write(whole[: len(whole) // 2])
        with caplog.at_level("WARNING", logger="repro.tools.cache"):
            assert cache.get(key) is None  # degrades to a miss
        assert cache.corrupt == 1
        assert cache.misses == 1
        assert obs_on.counter("cache.corrupt").value == 1
        assert obs_on.counter("cache.misses").value == 1
        assert any("corrupt cache entry" in r.message
                   for r in caplog.records)
        # the next put repairs the slot
        cache.put(key, {"ok": 1})
        assert cache.get(key) == {"ok": 1}
        assert cache.hits == 1

    def test_plain_miss_is_not_corrupt(self, tmp_path, obs_on):
        cache = AnalysisCache(str(tmp_path))
        assert cache.get("ab" + "0" * 62) is None
        assert cache.corrupt == 0
        assert obs_on.counter("cache.corrupt").value == 0
        assert obs_on.counter("cache.misses").value == 1

    def test_clear_counts_evictions(self, tmp_path, obs_on):
        cache = AnalysisCache(str(tmp_path))
        cache.put("ab" + "0" * 62, 1)
        cache.put("cd" + "0" * 62, 2)
        assert cache.clear() == 2
        assert obs_on.counter("cache.evictions").value == 2

    def test_clear(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        cache.put("ab" + "0" * 62, 1)
        cache.put("cd" + "0" * 62, 2)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert AnalysisCache().root == str(tmp_path / "envcache")

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        cache.put("ef" + "0" * 62, list(range(100)))
        leftovers = [f for _, _, files in os.walk(str(tmp_path))
                     for f in files if f.startswith(".tmp-")]
        assert leftovers == []


class TestBlobStore:
    def test_put_get_round_trip(self, tmp_path):
        import hashlib
        cache = AnalysisCache(str(tmp_path))
        data = b"shard partial bytes"
        digest = hashlib.sha256(data).hexdigest()
        assert not cache.has_blob(digest)
        cache.put_blob(digest, data)
        assert cache.has_blob(digest)
        assert cache.get_blob(digest) == data
        # idempotent: a second put is a no-op
        cache.put_blob(digest, data)
        assert cache.get_blob(digest) == data

    def test_corrupt_blob_is_a_miss(self, tmp_path, obs_on):
        import hashlib
        cache = AnalysisCache(str(tmp_path))
        data = b"payload"
        digest = hashlib.sha256(data).hexdigest()
        cache.put_blob(digest, data)
        with open(cache._blob_path(digest), "wb") as fh:
            fh.write(b"tampered")
        assert cache.get_blob(digest) is None
        assert cache.corrupt == 1

    def test_missing_blob_is_a_miss(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        assert cache.get_blob("0" * 64) is None


class TestQuarantine:
    def test_corrupt_entry_moved_to_quarantine(self, tmp_path, obs_on):
        cache = AnalysisCache(str(tmp_path))
        key = "ab" + "0" * 62
        cache.put(key, {"ok": True})
        with open(cache._path(key), "wb") as fh:
            fh.write(b"not a pickle")
        assert cache.get(key) is None
        assert not os.path.exists(cache._path(key))
        qpath = os.path.join(str(tmp_path), AnalysisCache.QUARANTINE_DIR,
                             key + ".pkl")
        assert os.path.exists(qpath)
        assert cache.quarantined == 1
        assert obs_on.counter("cache.quarantined").value == 1
        assert "quarantined=1" in repr(cache)

    def test_quarantined_entries_invisible_to_lookups(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        key = "ab" + "0" * 62
        cache.put(key, 1)
        with open(cache._path(key), "wb") as fh:
            fh.write(b"junk")
        cache.get(key)
        assert len(cache) == 0
        assert key not in cache
        # the slot is writable again after quarantine
        cache.put(key, 2)
        assert cache.get(key) == 2

    def test_fsync_mode_round_trips(self, tmp_path):
        cache = AnalysisCache(str(tmp_path), fsync=True)
        key = "ab" + "0" * 62
        cache.put(key, {"durable": [1, 2]})
        assert cache.get(key) == {"durable": [1, 2]}

    def test_sweep_stale_removes_only_old_temp_files(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        key = "ab" + "0" * 62
        cache.put(key, 1)
        old = os.path.join(str(tmp_path), "ab", ".tmp-dead")
        fresh = os.path.join(str(tmp_path), "ab", ".tmp-live")
        for p in (old, fresh):
            with open(p, "wb") as fh:
                fh.write(b"partial")
        past = 10_000.0
        os.utime(old, (past, past))
        assert cache.sweep_stale(max_age_s=3600.0) == 1
        assert not os.path.exists(old)
        assert os.path.exists(fresh)  # a live writer's temp survives
        assert cache.get(key) == 1  # real entries untouched


class TestSessionIntegration:
    def test_second_session_restored_from_cache(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        s1 = AnalysisSession(fig1_interchange(12, 12), cache=cache)
        s1.run()
        assert not s1.from_cache
        s2 = AnalysisSession(fig1_interchange(12, 12), cache=cache)
        s2.run()
        assert s2.from_cache
        assert s2.totals() == s1.totals()
        assert s2.analyzer.dump_state() == s1.analyzer.dump_state()
        assert vars(s2.stats) == vars(s1.stats)
        # downstream reports keep working on the restored state
        assert s2.render_carried(n=3)

    def test_param_change_misses(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        AnalysisSession(stream_triad(64, 1), cache=cache).run()
        s2 = AnalysisSession(stream_triad(64, 1), cache=cache)
        s2.run(timesteps=2)
        assert not s2.from_cache

    def test_simulate_bypasses_cache(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        AnalysisSession(fig1_interchange(8, 8), cache=cache,
                        simulate=True).run()
        s2 = AnalysisSession(fig1_interchange(8, 8), cache=cache,
                            simulate=True)
        s2.run()
        assert not s2.from_cache
        assert s2.sim.totals()  # the simulator actually ran

    def test_scalar_executor_opt_out(self, tmp_path):
        s1 = AnalysisSession(fig1_interchange(8, 8), batch=False)
        s1.run()
        s2 = AnalysisSession(fig1_interchange(8, 8), batch=True)
        s2.run()
        assert s1.analyzer.dump_state() == s2.analyzer.dump_state()

    def test_cached_payload_is_plain_pickle(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        session = AnalysisSession(fig1_interchange(8, 8), cache=cache)
        session.run()
        files = [os.path.join(dp, f) for dp, _, fs in os.walk(str(tmp_path))
                 for f in fs if f.endswith(".pkl")]
        assert len(files) == 1
        with open(files[0], "rb") as fh:
            payload = pickle.load(fh)
        assert payload["analyzer_state"] == session.analyzer.dump_state()
