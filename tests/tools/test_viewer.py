"""The hpcviewer-style text browser."""

import pytest

from repro.apps.kernels import fig1_interchange
from repro.tools import AnalysisSession
from repro.tools.scopetree import ROOT
from repro.tools.viewer import Viewer


@pytest.fixture(scope="module")
def viewer():
    session = AnalysisSession(fig1_interchange(48, 48))
    session.run()
    return session.viewer, session


class TestMetrics:
    def test_inclusive_root_is_total(self, viewer):
        v, session = viewer
        for level in v.levels():
            assert v.inclusive(level, ROOT) == pytest.approx(
                session.prediction.levels[level].total)

    def test_inclusive_ge_exclusive(self, viewer):
        v, session = viewer
        for sid in v.tree.walk():
            assert v.inclusive("L2", sid) >= v.exclusive("L2", sid) - 1e-9

    def test_carried_column(self, viewer):
        v, session = viewer
        outer = session.program.scope_named("I").sid
        assert v.carried_of("L2", outer) > 0

    def test_hot_scopes_sorted(self, viewer):
        v, _ = viewer
        for view in ("exclusive", "inclusive", "carried"):
            values = [val for _sid, val in v.hot_scopes("L2", 10, view)]
            assert values == sorted(values, reverse=True)


class TestRendering:
    def test_render_tree(self, viewer):
        v, _ = viewer
        text = v.render("L2")
        assert "inclusive" in text and "exclusive" in text
        assert "main" in text
        assert "%" in text

    def test_render_respects_min_share(self, viewer):
        v, _ = viewer
        full = v.render("L2", min_share=0.0)
        filtered = v.render("L2", min_share=0.99)
        assert len(filtered.splitlines()) <= len(full.splitlines())

    def test_render_max_depth(self, viewer):
        v, _ = viewer
        shallow = v.render("L2", max_depth=0)
        assert "  J" not in shallow  # nested loop indented, filtered

    def test_render_hot(self, viewer):
        v, _ = viewer
        text = v.render_hot("L2", n=3, view="carried")
        assert "carried" in text
        assert "main:I" in text


class TestArraysView:
    def test_render_arrays(self, viewer):
        v, _ = viewer
        text = v.render_arrays()
        assert "A" in text and "B" in text
        assert "L3 bytes" in text

    def test_sorted_by_last_cache_level(self, viewer):
        v, session = viewer
        text = v.render_arrays()
        rows = [line.split()[0] for line in text.splitlines()[3:]]
        by_array = session.prediction.levels["L3"].by_array()
        expected = sorted(by_array, key=lambda a: -by_array[a])
        assert rows[:len(expected)] == expected
