"""Analysis-cache eviction: coldest-first GC under a size budget."""

import os
import time

import pytest

from repro.cli import main
from repro.tools import AnalysisCache


def _fill(cache, n, payload_bytes=4096):
    """Create n entries with strictly increasing access times; returns
    keys oldest-first."""
    keys = []
    for i in range(n):
        key = f"{i:02x}" + "0" * 62
        cache.put(key, {"pad": b"x" * payload_bytes, "i": i})
        keys.append(key)
    now = time.time()
    for age, key in enumerate(reversed(keys)):
        # pin atimes explicitly: relatime and fast successive puts would
        # otherwise make the LRU ranking nondeterministic
        os.utime(cache._path(key), (now - age * 100, now - age * 100))
    return keys


class TestGcEntries:
    def test_coldest_evicted_first(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        keys = _fill(cache, 8)
        entry = os.path.getsize(cache._path(keys[0]))
        result = cache.gc_entries(entry * 4)
        assert set(result.evicted) == set(keys[:4])
        assert set(result.kept) == set(keys[4:])
        for key in keys[:4]:
            assert cache.get(key) is None
        for key in keys[4:]:
            assert cache.get(key) is not None

    def test_under_budget_is_noop(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        keys = _fill(cache, 3)
        result = cache.gc_entries(1024 ** 3)
        assert result.evicted == []
        assert set(result.kept) == set(keys)
        assert result.freed_bytes == 0
        assert result.total_bytes_after == result.total_bytes_before

    def test_dry_run_deletes_nothing(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        keys = _fill(cache, 4)
        result = cache.gc_entries(0, dry_run=True)
        assert set(result.evicted) == set(keys)
        for key in keys:
            assert os.path.exists(cache._path(key))

    def test_result_accounting(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        _fill(cache, 6)
        before = sum(os.path.getsize(cache._path(f"{i:02x}" + "0" * 62))
                     for i in range(6))
        result = cache.gc_entries(before // 2)
        assert result.total_bytes_before == before
        assert result.total_bytes_after <= before // 2
        assert result.freed_bytes == (result.total_bytes_before
                                      - result.total_bytes_after)
        data = result.to_dict()
        assert data["freed_bytes"] == result.freed_bytes

    def test_quarantine_and_tmp_files_untouched(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        _fill(cache, 2)
        qdir = os.path.join(str(tmp_path), "quarantine")
        os.makedirs(qdir)
        qfile = os.path.join(qdir, "bad.pkl")
        open(qfile, "wb").write(b"x" * 1000)
        result = cache.gc_entries(0)
        assert len(result.evicted) == 2
        assert os.path.exists(qfile)

    def test_shared_mode_gc_respects_writer_lock(self, tmp_path):
        """In shared mode the eviction pass runs under the writer flock,
        so it serializes with concurrent writers instead of racing them."""
        import fcntl
        cache = AnalysisCache(str(tmp_path), shared=True)
        _fill(cache, 2)
        cache.gc_entries(0)
        # the lock file exists and is free again after the pass
        lock_path = os.path.join(str(tmp_path), ".writer.lock")
        with open(lock_path, "w") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX | fcntl.LOCK_NB)
            fcntl.flock(fh, fcntl.LOCK_UN)


class TestCacheGcCli:
    def test_gc_reports_and_evicts(self, tmp_path, capsys):
        cache = AnalysisCache(str(tmp_path))
        _fill(cache, 5)
        assert main(["cache", "gc", "--max-gb", "0",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out and "(5 entries)" in out
        assert len(AnalysisCache(str(tmp_path))) == 0

    def test_gc_dry_run(self, tmp_path, capsys):
        cache = AnalysisCache(str(tmp_path))
        keys = _fill(cache, 3)
        assert main(["cache", "gc", "--max-gb", "0", "--dry-run",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "(dry run)" in out
        for key in keys:
            assert os.path.exists(cache._path(key))
