"""Shared (read-mostly concurrent) mode of the AnalysisCache.

Shared mode exists for the service: many worker processes read one
cache while at most a few write.  Writers serialize on a lock file;
readers take no lock at all and instead verify a sha256 header on every
entry, so a torn or half-written file degrades to a miss (and
quarantine) rather than a wrong answer.
"""

import multiprocessing
import os
import pickle
import time

import pytest

from repro.tools.cache import _VERIFIED_MAGIC, AnalysisCache


class TestSharedFormat:
    def test_shared_entries_carry_digest_header(self, tmp_path):
        cache = AnalysisCache(str(tmp_path), shared=True)
        key = "ab" + "0" * 62
        cache.put(key, {"x": 1})
        raw = open(cache._path(key), "rb").read()
        assert raw.startswith(_VERIFIED_MAGIC)
        assert cache.get(key) == {"x": 1}
        assert cache.verified_reads == 1

    def test_plain_mode_reads_shared_entries(self, tmp_path):
        AnalysisCache(str(tmp_path), shared=True).put("cd" + "0" * 62,
                                                      [1, 2, 3])
        plain = AnalysisCache(str(tmp_path))
        assert plain.get("cd" + "0" * 62) == [1, 2, 3]

    def test_shared_mode_reads_plain_entries(self, tmp_path):
        AnalysisCache(str(tmp_path)).put("ef" + "0" * 62, "legacy")
        shared = AnalysisCache(str(tmp_path), shared=True)
        assert shared.get("ef" + "0" * 62) == "legacy"

    def test_corrupt_body_is_a_quarantined_miss(self, tmp_path):
        cache = AnalysisCache(str(tmp_path), shared=True)
        key = "12" + "0" * 62
        cache.put(key, {"x": 1})
        path = cache._path(key)
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:  # flip bytes in the pickled body
            fh.write(raw[:-4] + b"\xde\xad\xbe\xef")
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert not os.path.exists(path)  # quarantined away

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = AnalysisCache(str(tmp_path), shared=True)
        key = "34" + "0" * 62
        cache.put(key, list(range(100)))
        path = cache._path(key)
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:  # simulate a torn write
            fh.write(raw[:len(raw) // 2])
        assert cache.get(key) is None

    def test_repr_mentions_shared(self, tmp_path):
        # construct under a neutral subdir: tmp_path itself embeds the
        # test name, which contains the word "shared"
        root = str(tmp_path / "c")
        assert ", shared)" in repr(AnalysisCache(root, shared=True))
        assert ", shared)" not in repr(AnalysisCache(root))


def _writer_main(root, key, stop_path):
    """Rewrite one key as fast as possible until told to stop."""
    cache = AnalysisCache(root, shared=True)
    i = 0
    while not os.path.exists(stop_path):
        cache.put(key, {"generation": i, "payload": list(range(256))})
        i += 1


class TestConcurrentReaders:
    def test_two_readers_under_a_live_writer(self, tmp_path):
        """Two independent shared-mode readers poll a key a writer
        process is continuously rewriting: every successful read must
        be an intact generation (the digest check guarantees it), and
        no read may raise."""
        root = str(tmp_path / "cache")
        key = "56" + "0" * 62
        stop = str(tmp_path / "stop")
        AnalysisCache(root, shared=True).put(
            key, {"generation": -1, "payload": list(range(256))})
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        writer = ctx.Process(target=_writer_main, args=(root, key, stop))
        writer.start()
        readers = [AnalysisCache(root, shared=True) for _ in range(2)]
        try:
            good = 0
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                for cache in readers:
                    value = cache.get(key)
                    if value is not None:
                        assert set(value) == {"generation", "payload"}
                        assert value["payload"] == list(range(256))
                        good += 1
        finally:
            open(stop, "w").close()
            writer.join(timeout=10)
            assert not writer.is_alive()
        assert good > 0
        assert sum(c.verified_reads for c in readers) == good

    def test_writer_lock_serializes_two_writers(self, tmp_path):
        """Both writers finish and the final entry is intact — the
        lock file prevents interleaved tmp/replace races."""
        root = str(tmp_path / "cache")
        key = "78" + "0" * 62
        stop = str(tmp_path / "stop")
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        writers = [ctx.Process(target=_writer_main,
                               args=(root, key, stop)) for _ in range(2)]
        for w in writers:
            w.start()
        time.sleep(0.5)
        open(stop, "w").close()
        for w in writers:
            w.join(timeout=10)
            assert w.exitcode == 0
        final = AnalysisCache(root, shared=True).get(key)
        assert final is not None
        assert final["payload"] == list(range(256))


class TestSharedSessions:
    def test_two_sessions_share_one_service_style_cache(self, tmp_path):
        """The service pattern: one session (worker) populates the
        shared cache, a second session in another 'tenant' restores
        from it byte-identically."""
        from tests.helpers import two_array_kernel
        from repro.tools.session import AnalysisSession

        root = str(tmp_path / "cache")
        first = AnalysisSession(two_array_kernel(12, 12),
                                cache=AnalysisCache(root, shared=True))
        first.run()
        assert not first.from_cache
        second = AnalysisSession(two_array_kernel(12, 12),
                                 cache=AnalysisCache(root, shared=True))
        second.run()
        assert second.from_cache
        assert (second.analyzer.dump_state()
                == first.analyzer.dump_state())
        assert second.cache.verified_reads >= 1
