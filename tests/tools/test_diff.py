"""Before/after session diffs."""

import pytest

from repro.apps.kernels import fig1_interchange
from repro.tools import AnalysisSession, diff_sessions
from repro.transform import interchange


@pytest.fixture(scope="module")
def sessions():
    before = AnalysisSession(fig1_interchange(48, 48))
    before.run()
    after = AnalysisSession(interchange(fig1_interchange(48, 48), "I"))
    after.run()
    return before, after


class TestDiff:
    def test_total_delta_negative_after_fix(self, sessions):
        before, after = sessions
        diff = diff_sessions(before, after, "L2")
        assert diff.total_delta < 0
        assert diff.after_total < diff.before_total / 3

    def test_removed_patterns_identified(self, sessions):
        before, after = sessions
        diff = diff_sessions(before, after, "L2")
        removed = diff.removed()
        assert removed
        arrays = {key[0] for key, _delta in removed}
        assert arrays <= {"A", "B"}
        # the eliminated patterns were carried by the old outer I loop
        carriers = {key[3] for key, _delta in removed}
        assert "main:I" in carriers

    def test_deltas_consistent(self, sessions):
        before, after = sessions
        diff = diff_sessions(before, after, "L2")
        net_by_array = diff.delta_of(array="A") + diff.delta_of(array="B")
        assert net_by_array == pytest.approx(diff.total_delta, abs=1.0)

    def test_identity_diff_is_empty(self):
        s1 = AnalysisSession(fig1_interchange(24, 24))
        s1.run()
        s2 = AnalysisSession(fig1_interchange(24, 24))
        s2.run()
        diff = diff_sessions(s1, s2, "L2")
        assert diff.total_delta == pytest.approx(0.0)
        assert not diff.removed()
        assert not diff.introduced()

    def test_render(self, sessions):
        before, after = sessions
        text = diff_sessions(before, after, "L2").render()
        assert "miss diff" in text
        assert "largest reductions" in text
        assert "-" in text
