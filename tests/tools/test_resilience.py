"""Resilience primitives: policies, deadlines, failures, checkpoints."""

import json
import os
import pickle
import time

import pytest

from repro.apps.sweep3d import SweepParams, build_original
from repro.tools.resilience import (
    DEFAULT_POLICY, DeadlineExceeded, FailureKind, RetryPolicy,
    SweepCheckpoint, WorkerFailure, classify, deadline, retry_call,
)
from repro.tools.sweep import SweepTask


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)
        assert policy.backoff(3) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_jitter_is_seeded_and_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=42)
        a = [policy.backoff(i, policy.rng()) for i in range(3)]
        b = [policy.backoff(i, policy.rng()) for i in range(3)]
        assert a == b
        # jitter only ever adds, bounded by jitter * base
        assert all(0.1 * 2 ** i <= v <= 0.15 * 2 ** i
                   for i, v in enumerate(a))

    def test_should_retry_taxonomy(self):
        policy = RetryPolicy(retries=2)
        assert policy.should_retry(FailureKind.TRANSIENT, 0)
        assert policy.should_retry(FailureKind.TRANSIENT, 1)
        assert not policy.should_retry(FailureKind.TRANSIENT, 2)
        assert policy.should_retry(FailureKind.POISON, 0)
        assert not policy.should_retry(FailureKind.FATAL, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)

    def test_default_policy_has_no_deadline(self):
        assert DEFAULT_POLICY.timeout is None
        assert DEFAULT_POLICY.retries == 2


class TestClassify:
    @pytest.mark.parametrize("exc", [
        OSError("io"), EOFError(), TimeoutError(), MemoryError(),
        DeadlineExceeded("slow"), pickle.UnpicklingError("bad"),
    ])
    def test_transient(self, exc):
        assert classify(exc) is FailureKind.TRANSIENT

    @pytest.mark.parametrize("exc", [
        ValueError("bad"), KeyError("k"), AssertionError(),
        ZeroDivisionError(),
    ])
    def test_fatal(self, exc):
        assert classify(exc) is FailureKind.FATAL


class TestWorkerFailure:
    def test_from_exception_captures_everything(self):
        try:
            raise ValueError("kaboom")
        except ValueError as exc:
            failure = WorkerFailure.from_exception(exc, retries=3,
                                                   duration=1.25)
        assert failure.kind == "fatal"
        assert failure.summary == "ValueError: kaboom"
        assert failure.render().startswith("ValueError: kaboom\n")
        assert "Traceback" in failure.render()
        assert failure.retries == 3
        d = failure.to_dict()
        assert d["kind"] == "fatal" and d["duration"] == 1.25

    def test_kind_override(self):
        failure = WorkerFailure.from_exception(ValueError("x"),
                                               kind=FailureKind.POISON)
        assert failure.kind == "poison"


class TestDeadline:
    def test_interrupts_sleep(self):
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            with deadline(0.05):
                time.sleep(5.0)
        assert time.monotonic() - t0 < 2.0

    def test_noop_when_disabled(self):
        with deadline(None):
            pass
        with deadline(0):
            pass

    def test_fast_block_unaffected(self):
        with deadline(5.0):
            x = sum(range(1000))
        assert x == 499500

    def test_restores_outer_timer(self):
        # the inner deadline must not disarm the outer one
        with pytest.raises(DeadlineExceeded):
            with deadline(0.2):
                with deadline(5.0):
                    pass
                time.sleep(5.0)

    def test_unsupported_host_degrades_loudly(self, obs_on, monkeypatch,
                                              caplog):
        from repro.tools import resilience
        monkeypatch.setattr(resilience, "_deadline_usable", lambda: False)
        monkeypatch.setattr(resilience, "_deadline_warned", False)
        with caplog.at_level("WARNING", logger="repro.tools.resilience"):
            with deadline(0.01):
                time.sleep(0.05)  # would raise if enforced
            with deadline(0.01):
                pass
        snap = obs_on.snapshot()
        assert snap["counters"]["resil.deadline_unsupported"] == 2
        warned = [r for r in caplog.records
                  if "cannot be enforced" in r.getMessage()]
        assert len(warned) == 1  # once per process, not per unit


class TestRetryCall:
    def test_retries_transient_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("hiccup")
            return "ok"

        slept = []
        result = retry_call(flaky, RetryPolicy(retries=3, jitter=0.0),
                            sleep=slept.append)
        assert result == "ok"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_fatal_raises_immediately(self):
        calls = []

        def bad():
            calls.append(1)
            raise ValueError("no")

        with pytest.raises(ValueError):
            retry_call(bad, RetryPolicy(retries=5), sleep=lambda _s: None)
        assert len(calls) == 1

    def test_budget_exhaustion_propagates(self):
        def always():
            raise OSError("down")

        with pytest.raises(OSError):
            retry_call(always, RetryPolicy(retries=2, jitter=0.0),
                       sleep=lambda _s: None)


def _task(n=4, **kw):
    return SweepTask(key=n, builder=build_original,
                     args=(SweepParams(n=n, mm=3, nm=2, noct=1),),
                     mode="analyze", **kw)


class TestSweepCheckpoint:
    def test_round_trip(self, tmp_path):
        import hashlib

        ckpt = SweepCheckpoint(str(tmp_path / "ck.jsonl"))
        digest = SweepCheckpoint.unit_digest(_task(), "task", 0)
        assert ckpt.load() == {}
        payload = {"totals": {"L2": 7}}
        ckpt.record(digest, "unit-4", payload)
        journal = ckpt.load()
        # payloads are named by content hash (for dedup), not unit digest
        content = hashlib.sha256(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        ).hexdigest()
        assert journal == {digest: content + ".pkl"}
        assert ckpt.restore(digest, journal[digest]) == payload

    def test_digest_changes_with_recipe(self):
        base = SweepCheckpoint.unit_digest(_task(4), "task", 0)
        assert SweepCheckpoint.unit_digest(_task(5), "task", 0) != base
        assert SweepCheckpoint.unit_digest(_task(4), "shard", 0) != base
        assert SweepCheckpoint.unit_digest(_task(4), "task", 1) != base
        assert (SweepCheckpoint.unit_digest(_task(4, engine="numpy"),
                                            "task", 0) != base)
        assert SweepCheckpoint.unit_digest(_task(4), "task", 0) == base

    def test_truncated_final_line_skipped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ckpt = SweepCheckpoint(str(path))
        d1 = SweepCheckpoint.unit_digest(_task(4), "task", 0)
        d2 = SweepCheckpoint.unit_digest(_task(5), "task", 0)
        ckpt.record(d1, "a", 1)
        after_first = ckpt.load()
        ckpt.record(d2, "b", 2)
        text = path.read_text()
        path.write_text(text[:-20])  # crash mid-append of the last line
        assert ckpt.load() == after_first
        assert set(after_first) == {d1}

    def test_missing_payload_degrades_to_recompute(self, tmp_path):
        ckpt = SweepCheckpoint(str(tmp_path / "ck.jsonl"))
        digest = SweepCheckpoint.unit_digest(_task(), "task", 0)
        ckpt.record(digest, "a", {"x": 1})
        journal = ckpt.load()
        assert digest in journal
        os.unlink(os.path.join(ckpt.payload_dir, journal[digest]))
        assert ckpt.restore(digest, journal[digest]) is None

    def test_corrupt_payload_degrades_to_recompute(self, tmp_path):
        ckpt = SweepCheckpoint(str(tmp_path / "ck.jsonl"))
        digest = SweepCheckpoint.unit_digest(_task(), "task", 0)
        ckpt.record(digest, "a", {"x": 1})
        payload_path = os.path.join(ckpt.payload_dir, digest + ".pkl")
        with open(payload_path, "wb") as fh:
            fh.write(b"\x00garbage")
        assert ckpt.restore(digest, digest + ".pkl") is None

    def test_version_mismatch_invalidates_journal(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        ckpt = SweepCheckpoint(str(path))
        digest = SweepCheckpoint.unit_digest(_task(), "task", 0)
        ckpt.record(digest, "a", 1)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 999
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        assert ckpt.load() == {}

    def test_fsync_mode_round_trips(self, tmp_path):
        ckpt = SweepCheckpoint(str(tmp_path / "ck.jsonl"), fsync=True)
        digest = SweepCheckpoint.unit_digest(_task(), "task", 0)
        ckpt.record(digest, "a", [1, 2, 3])
        journal = ckpt.load()
        assert ckpt.restore(digest, journal[digest]) == [1, 2, 3]

    def test_identical_payloads_share_one_sidecar(self, obs_on, tmp_path):
        ckpt = SweepCheckpoint(str(tmp_path / "ck.jsonl"))
        d1 = SweepCheckpoint.unit_digest(_task(4), "task", 0)
        d2 = SweepCheckpoint.unit_digest(_task(5), "task", 0)
        payload = {"totals": {"L2": 7}}
        ckpt.record(d1, "a", payload)
        ckpt.record(d2, "b", payload)
        journal = ckpt.load()
        assert journal[d1] == journal[d2]
        assert len(os.listdir(ckpt.payload_dir)) == 1
        snap = obs_on.snapshot()
        assert snap["counters"]["resil.checkpoint_dedup"] == 1
        assert ckpt.restore(d1, journal[d1]) == payload
        assert ckpt.restore(d2, journal[d2]) == payload

    def test_cache_backed_payloads(self, obs_on, tmp_path):
        from repro.tools.cache import AnalysisCache
        cache = AnalysisCache(str(tmp_path / "cache"))
        ckpt = SweepCheckpoint(str(tmp_path / "ck.jsonl"), cache=cache)
        d1 = SweepCheckpoint.unit_digest(_task(4), "task", 0)
        d2 = SweepCheckpoint.unit_digest(_task(5), "task", 0)
        ckpt.record(d1, "a", {"x": 1})
        ckpt.record(d2, "b", {"x": 1})
        journal = ckpt.load()
        assert journal[d1].startswith("cache:")
        assert journal[d1] == journal[d2]
        # payloads live in the cache blob store, not a sidecar dir
        assert not os.path.exists(ckpt.payload_dir)
        snap = obs_on.snapshot()
        assert snap["counters"]["resil.checkpoint_dedup"] == 1
        assert ckpt.restore(d1, journal[d1]) == {"x": 1}
        # a resume without the cache attached degrades to recompute
        bare = SweepCheckpoint(str(tmp_path / "ck.jsonl"))
        assert bare.restore(d1, journal[d1]) is None

    def test_legacy_unit_named_payload_restores(self, tmp_path):
        # journals written before content addressing named payloads by
        # the unit digest; restore must still read them
        ckpt = SweepCheckpoint(str(tmp_path / "ck.jsonl"))
        digest = SweepCheckpoint.unit_digest(_task(), "task", 0)
        os.makedirs(ckpt.payload_dir, exist_ok=True)
        with open(os.path.join(ckpt.payload_dir, digest + ".pkl"),
                  "wb") as fh:
            fh.write(pickle.dumps({"x": 2}))
        assert ckpt.restore(digest, digest + ".pkl") == {"x": 2}
