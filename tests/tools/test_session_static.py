"""AnalysisSession with engine="static": analytical runs end to end.

The static engine must be a drop-in engine choice: same downstream
pipeline (prediction, recommendations, manifest), same cache protocol,
same graceful degradation — just no execution.
"""

import pytest

from repro.apps.kernels import stream_triad
from repro.apps.registry import build_workload
from repro.model import MachineConfig
from repro.testing import faults
from repro.testing.faults import FaultSpec
from repro.tools import AnalysisCache, AnalysisSession

CFG = MachineConfig.scaled_itanium2()


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


class TestStaticRun:
    def test_exact_match_on_triad(self):
        """Triad is single-event everywhere: static == dynamic exactly,
        so the whole downstream pipeline agrees too."""
        dyn = AnalysisSession(stream_triad(64, 2), config=CFG).run()
        sta = AnalysisSession(stream_triad(64, 2), config=CFG,
                              engine="static").run()
        assert sta.analyzer.dump_state() == dyn.analyzer.dump_state()
        assert sta.totals() == dyn.totals()
        assert sta.stats.accesses == dyn.stats.accesses

    def test_pipeline_consumes_static_result(self):
        session = AnalysisSession(build_workload("sweep3d", mesh=6),
                                  config=CFG, engine="static").run()
        totals = session.totals()
        assert all(totals[lvl] >= 0 for lvl in ("L2", "L3", "TLB"))
        assert session.render_carried()
        assert session.render_recommendations("L2")
        assert session.export_xml()

    def test_manifest_records_static_engine(self):
        session = AnalysisSession(stream_triad(32, 1), config=CFG,
                                  engine="static").run()
        assert session.manifest.engine == "static"
        assert "static_estimate" in session.manifest.phases
        assert "execute" not in session.manifest.phases
        assert session.manifest.events["accesses"] == session.stats.accesses

    def test_params_override(self):
        from repro.lang import (
            MemoryLayout, Var, load, loop, program, routine, stmt,
        )

        def build():
            lay = MemoryLayout()
            a = lay.array("A", 256)
            nest = loop("i", 1, Var("n"), stmt(load(a, Var("i"))), name="I")
            return program("p", lay, [routine("main", nest)],
                           params={"n": 32})

        base = AnalysisSession(build(), config=CFG, engine="static").run()
        big = AnalysisSession(build(), config=CFG,
                              engine="static").run(n=64)
        assert base.stats.accesses == 32
        assert big.stats.accesses == 64
        dyn = AnalysisSession(build(), config=CFG).run(n=64)
        assert big.analyzer.dump_state() == dyn.analyzer.dump_state()


class TestStaticGuards:
    def test_simulate_rejected(self):
        with pytest.raises(ValueError, match="simulator"):
            AnalysisSession(stream_triad(32, 1), engine="static",
                            simulate=True)

    def test_shards_rejected(self):
        with pytest.raises(ValueError, match="shard"):
            AnalysisSession(stream_triad(32, 1), engine="static", shards=2)

    def test_trace_store_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="trace"):
            AnalysisSession(stream_triad(32, 1), engine="static",
                            trace_store=str(tmp_path))


class TestStaticCache:
    def test_cache_roundtrip(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        first = AnalysisSession(stream_triad(64, 2), config=CFG,
                                engine="static", cache=cache).run()
        assert not first.from_cache
        second = AnalysisSession(stream_triad(64, 2), config=CFG,
                                 engine="static", cache=cache).run()
        assert second.from_cache
        assert (second.analyzer.dump_state()
                == first.analyzer.dump_state())

    def test_key_distinct_from_dynamic(self, tmp_path):
        """A static entry must never satisfy a dynamic lookup (or vice
        versa): the engine is part of the cache key."""
        cache = AnalysisCache(str(tmp_path))
        AnalysisSession(stream_triad(64, 2), config=CFG,
                        engine="static", cache=cache).run()
        dyn = AnalysisSession(stream_triad(64, 2), config=CFG,
                              cache=cache).run()
        assert not dyn.from_cache
        assert len(cache) == 2


class TestStaticDegrade:
    def test_failure_falls_back_to_fenwick(self):
        faults.install(FaultSpec(point="session.run", action="raise",
                                 exc="RuntimeError",
                                 match=(("engine", "static"),)))
        session = AnalysisSession(stream_triad(64, 2), config=CFG,
                                  engine="static").run()
        assert session.fallback is not None
        assert session.fallback["from"] == "static"
        assert session.fallback["to"] == "fenwick"
        ref = AnalysisSession(stream_triad(64, 2), config=CFG).run()
        assert session.analyzer.dump_state() == ref.analyzer.dump_state()

    def test_unsupported_program_raises_static_unsupported(self):
        """The degrade trigger for irregular programs: enumeration blows
        the point budget and raises StaticUnsupported."""
        from repro.apps.kernels import irregular_gather
        from repro.static import StaticUnsupported
        from repro.static.profile import static_profile
        with pytest.raises(StaticUnsupported, match="too irregular"):
            static_profile(irregular_gather(64, 128), CFG.granularities(),
                           max_points=8)


class TestStaticSweep:
    def test_sweep_task_accepts_static_engine(self):
        from repro.tools.sweep import SweepTask, run_sweep
        task = SweepTask(key="triad-static", builder=stream_triad,
                         args=(64, 2), engine="static")
        out, = run_sweep([task])
        ref = AnalysisSession(stream_triad(64, 2)).run().totals()
        assert out.totals == ref
