"""Scope tree: structure, inclusive/exclusive aggregation, rendering."""

import pytest

from repro.lang import (
    MemoryLayout, Var, call, load, loop, program, routine, stmt,
)
from repro.tools.scopetree import ROOT, ScopeTree


def _two_routine_prog():
    lay = MemoryLayout()
    a = lay.array("A", 8)
    sub = routine("sub",
                  loop("k", 1, 8, stmt(load(a, Var("k"))), name="K"))
    main = routine("main",
                   loop("j", 1, 2,
                        loop("i", 1, 4, stmt(load(a, Var("i"))), name="I"),
                        call("sub"),
                        name="J"))
    return program("p", lay, [main, sub])


class TestStructure:
    def test_routines_under_root(self):
        prog = _two_routine_prog()
        tree = ScopeTree(prog)
        tops = {tree.name(sid) for sid in tree.children[ROOT]}
        assert tops == {"main", "sub"}

    def test_loops_nested(self):
        prog = _two_routine_prog()
        tree = ScopeTree(prog)
        j_sid = prog.scope_named("J").sid
        i_sid = prog.scope_named("I").sid
        assert i_sid in tree.children[j_sid]

    def test_walk_visits_every_scope(self):
        prog = _two_routine_prog()
        tree = ScopeTree(prog)
        visited = set(tree.walk())
        assert visited >= {s.sid for s in prog.scopes}
        # plus one synthetic file node per distinct source file
        assert visited - {s.sid for s in prog.scopes} == set(tree.files)

    def test_file_level(self):
        prog = _two_routine_prog()
        tree = ScopeTree(prog)
        tops = list(tree.children[ROOT])
        assert all(tree.is_file(t) for t in tops)
        routine_names = {
            tree.name(child)
            for top in tops for child in tree.children[top]
        }
        assert routine_names == {"main", "sub"}

    def test_file_grouping_can_be_disabled(self):
        prog = _two_routine_prog()
        tree = ScopeTree(prog, group_by_file=False)
        tops = {tree.name(sid) for sid in tree.children[ROOT]}
        assert tops == {"main", "sub"}
        assert not tree.files


class TestAggregation:
    def test_inclusive_sums_descendants(self):
        prog = _two_routine_prog()
        tree = ScopeTree(prog)
        i_sid = prog.scope_named("I").sid
        j_sid = prog.scope_named("J").sid
        main_sid = prog.scope_named("main").sid
        exclusive = {i_sid: 10.0, j_sid: 5.0}
        inclusive = tree.inclusive(exclusive)
        assert inclusive[i_sid] == 10.0
        assert inclusive[j_sid] == 15.0
        assert inclusive[main_sid] == 15.0
        assert inclusive[ROOT] == 15.0

    def test_names(self):
        prog = _two_routine_prog()
        tree = ScopeTree(prog)
        assert tree.name(ROOT) == "<program>"
        assert tree.name(prog.scope_named("I").sid) == "main:I"
        assert tree.name(prog.scope_named("sub").sid) == "sub"

    def test_render_contains_scopes_and_values(self):
        prog = _two_routine_prog()
        tree = ScopeTree(prog)
        i_sid = prog.scope_named("I").sid
        text = tree.render({i_sid: 42.0}, title="test metric")
        assert "test metric" in text
        assert "main:I" in text or "I" in text
        assert "42" in text

    def test_render_min_value_filters(self):
        prog = _two_routine_prog()
        tree = ScopeTree(prog)
        i_sid = prog.scope_named("I").sid
        text = tree.render({i_sid: 1.0}, min_value=100.0)
        assert "I" not in text.split("\n", 2)[2] if len(text.split("\n")) > 2 else True
