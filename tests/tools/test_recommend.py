"""The Table I recommendation engine: every scenario row must trigger."""

import pytest

from repro.apps.kernels import (
    fig1_interchange, fig2_fragmentation, irregular_gather, stencil5,
    stream_triad,
)
from repro.tools import (
    AnalysisSession, FRAGMENTATION, FUSION, INTERCHANGE, IRREGULAR,
    STRIP_MINE_FUSION, TIME_LOOP,
)


def _scenarios(prog, level="L2", top_n=10):
    session = AnalysisSession(prog)
    session.run()
    recs = session.recommendations(level, top_n)
    return {r.scenario for r in recs}, recs, session


class TestTableIScenarios:
    def test_interchange_row(self):
        """Fig 1(a): spatial reuse carried by the outer loop."""
        scenarios, recs, _ = _scenarios(fig1_interchange(48, 48))
        assert INTERCHANGE in scenarios

    def test_interchanged_version_clean(self):
        """Fig 1(b): after interchange, no interchange recommendation for
        the dominant patterns (reuse is inner-loop, short distance)."""
        scenarios, recs, session = _scenarios(
            fig1_interchange(48, 48, interchanged=True))
        inter = [r for r in recs if r.scenario == INTERCHANGE]
        total = session.flatdb.total("L2")
        assert sum(r.pattern.miss("L2") for r in inter) < 0.05 * total

    def test_fragmentation_row(self):
        scenarios, recs, _ = _scenarios(fig2_fragmentation(64, 48))
        assert FRAGMENTATION in scenarios
        frag = next(r for r in recs if r.scenario == FRAGMENTATION)
        assert frag.pattern.array == "A"
        assert "split" in frag.advice

    def test_irregular_row(self):
        scenarios, recs, _ = _scenarios(irregular_gather(2048, 4096))
        assert IRREGULAR in scenarios
        rec = next(r for r in recs if r.scenario == IRREGULAR)
        assert "reordering" in rec.advice

    def test_time_loop_row(self):
        scenarios, recs, _ = _scenarios(stream_triad(2048, 2), level="L3")
        assert TIME_LOOP in scenarios
        rec = next(r for r in recs if r.scenario == TIME_LOOP)
        assert "time skewing" in rec.advice

    def test_fusion_row(self):
        scenarios, recs, _ = _scenarios(stencil5(72, 1))
        assert FUSION in scenarios

    def test_strip_mine_fusion_row(self):
        """GTC's pushi/gcmotion cross-routine reuse carried by pushi."""
        from repro.apps.gtc import GTCParams, build_gtc
        prog = build_gtc(None, GTCParams(micell=4, timesteps=1))
        scenarios, recs, _ = _scenarios(prog, level="L3", top_n=25)
        assert STRIP_MINE_FUSION in scenarios

    def test_cold_pattern_classification(self):
        from repro.tools.recommend import COLD_MISSES, classify_pattern
        from repro.tools.flatdb import PatternRow
        from repro.core.patterns import COLD
        prog = fig1_interchange(8, 8)
        row = PatternRow(0, "A", 1, COLD, COLD, {"L2": 5.0})
        recs = classify_pattern(row, prog)
        assert recs[0].scenario == COLD_MISSES


class TestRendering:
    def test_render_mentions_scopes_and_percent(self):
        prog = fig1_interchange(48, 48)
        session = AnalysisSession(prog)
        session.run()
        text = session.render_recommendations("L2", 5)
        assert "%" in text
        assert "interchange" in text


class TestEdgeCases:
    def test_render_empty(self):
        from repro.tools.recommend import render
        prog = fig1_interchange(8, 8)
        session = AnalysisSession(prog)
        session.run()
        text = render([], session.flatdb, "L2")
        assert "recommended transformations" in text

    def test_classify_without_static_info(self):
        """The engine degrades gracefully when only dynamic data exists."""
        from repro.tools.recommend import classify_pattern
        session = AnalysisSession(fig1_interchange(32, 32))
        session.run()
        row = session.flatdb.top("L2", 1, include_cold=False)[0]
        recs = classify_pattern(row, session.program)  # no static, no frag
        assert recs
        assert all(r.scenario != FRAGMENTATION for r in recs)

    def test_recommendation_str(self):
        session = AnalysisSession(fig1_interchange(32, 32))
        session.run()
        rec = session.recommendations("L2", 1)[0]
        text = str(rec)
        assert rec.scenario in text
