"""Parallel sweep driver: worker processes must change nothing but speed."""

import json

import pytest

from repro.apps.harness import measure
from repro.apps.sweep3d import SweepParams, build_original, build_variant
from repro.tools import (
    AnalysisSession, SweepOutcome, SweepTask, build_sweep_manifest,
    default_jobs, run_sweep,
)


def _boom_builder(*_args, **_kwargs):
    raise ValueError("builder exploded")


def _measure_tasks(meshes=(4, 5)):
    return [SweepTask(key=n, builder=build_original,
                      args=(SweepParams(n=n, mm=3, nm=2, noct=1),),
                      mode="measure", measure_kwargs={"name": f"s{n}"})
            for n in meshes]


def _analyze_tasks(meshes=(4, 5)):
    return [SweepTask(key=n, builder=build_original,
                      args=(SweepParams(n=n, mm=3, nm=2, noct=1),),
                      mode="analyze")
            for n in meshes]


class TestRunSweep:
    def test_measure_matches_direct_call(self):
        outcomes = run_sweep(_measure_tasks((4,)))
        direct = measure(build_original(SweepParams(n=4, mm=3, nm=2,
                                                    noct=1)), name="s4")
        assert outcomes[0].totals == direct.misses
        assert outcomes[0].result.total_cycles == direct.total_cycles

    def test_analyze_matches_direct_session(self):
        out = run_sweep(_analyze_tasks((4,)))[0]
        session = AnalysisSession(
            build_original(SweepParams(n=4, mm=3, nm=2, noct=1)))
        session.run()
        assert out.totals == session.totals()
        assert out.state == session.analyzer.dump_state()
        assert vars(out.stats) == vars(session.stats)

    def test_parallel_identical_to_inline(self):
        tasks = _measure_tasks() + _analyze_tasks()
        inline = run_sweep(tasks, jobs=1)
        parallel = run_sweep(tasks, jobs=2)
        assert [o.key for o in parallel] == [o.key for o in inline]
        for a, b in zip(inline, parallel):
            assert b.mode == a.mode
            assert b.totals == a.totals
            assert b.state == a.state

    def test_outcome_rehydrates_analyzer(self):
        out = run_sweep(_analyze_tasks((4,)))[0]
        analyzer = out.analyzer()
        assert analyzer.clock == out.state["clock"]
        assert out.db("line").raw == out.state["grans"][0]["raw"]

    def test_measure_outcome_has_no_analyzer(self):
        out = run_sweep(_measure_tasks((4,)))[0]
        with pytest.raises(RuntimeError):
            out.analyzer()

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SweepTask(key=0, builder=build_original, mode="simulate")

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_measure_tasks((4,)), jobs=0)

    def test_default_jobs_bounds(self):
        assert 1 <= default_jobs(4) <= 4

    def test_cached_analyze_task(self, tmp_path):
        task = SweepTask(key=4, builder=build_original,
                         args=(SweepParams(n=4, mm=3, nm=2, noct=1),),
                         mode="analyze", cache_dir=str(tmp_path))
        first = run_sweep([task])[0]
        second = run_sweep([task])[0]
        assert not first.from_cache
        assert second.from_cache
        assert second.totals == first.totals
        assert second.state == first.state

    def test_failing_builder_surfaces_error(self, caplog):
        tasks = _analyze_tasks((4,)) + [
            SweepTask(key="bad", builder=_boom_builder, mode="analyze")]
        with caplog.at_level("WARNING", logger="repro.tools.sweep"):
            outcomes = run_sweep(tasks)
        good, bad = outcomes
        assert not good.failed and good.totals
        assert bad.failed
        assert "ValueError: builder exploded" in bad.error
        assert "builder exploded" in bad.error  # traceback included
        assert bad.totals == {} and bad.state is None
        with pytest.raises(RuntimeError):
            bad.analyzer()
        assert any("failed" in r.message for r in caplog.records)

    def test_failing_task_does_not_poison_the_pool(self):
        tasks = [SweepTask(key="bad", builder=_boom_builder,
                           mode="analyze")] + _analyze_tasks((4, 5))
        outcomes = run_sweep(tasks, jobs=2)
        assert [o.key for o in outcomes] == ["bad", 4, 5]
        assert outcomes[0].failed
        assert not outcomes[1].failed and not outcomes[2].failed
        assert outcomes[1].totals and outcomes[2].totals

    def test_failure_counted_under_obs(self, obs_on):
        run_sweep([SweepTask(key="bad", builder=_boom_builder,
                             mode="analyze")] + _analyze_tasks((4,)))
        snap = obs_on.snapshot()
        assert snap["counters"]["sweep.worker_failures"] == 1
        assert snap["counters"]["sweep.tasks"] == 2
        assert snap["timers"]["sweep.task_latency"]["count"] == 2

    def test_parallel_worker_metrics_merge_to_parent(self, obs_on):
        outcomes = run_sweep(_analyze_tasks((4, 5)), jobs=2)
        assert all(out.metrics for out in outcomes)
        snap = obs_on.snapshot()
        assert snap["counters"]["sweep.tasks"] == 2
        # most (not all) accesses flow through the batched path; the rest
        # take the scalar fallback for non-affine loops
        total = sum(out.stats.accesses for out in outcomes)
        assert 0 < snap["counters"]["analyzer.batch_events"] <= total

class TestSweepManifest:
    def test_rollup_totals_and_cache_rate(self, tmp_path):
        task = SweepTask(key=4, builder=build_original,
                         args=(SweepParams(n=4, mm=3, nm=2, noct=1),),
                         mode="analyze", cache_dir=str(tmp_path))
        outcomes = run_sweep([task]) + run_sweep([task])  # miss then hit
        manifest = build_sweep_manifest(outcomes)
        assert manifest["kind"] == "sweep"
        assert manifest["tasks"] == 2 and manifest["failures"] == 0
        assert (manifest["events"]["accesses"]
                == sum(out.stats.accesses for out in outcomes) > 0)
        assert manifest["events"]["accesses"] == (
            manifest["events"]["loads"] + manifest["events"]["stores"])
        assert manifest["cache"] == {"eligible": 2, "hits": 1,
                                     "hit_rate": 0.5}
        rows = manifest["task_summaries"]
        assert [row["from_cache"] for row in rows] == [False, True]

    def test_failures_counted_with_first_error_line(self):
        outcomes = run_sweep(_analyze_tasks((4,)) + [
            SweepTask(key="bad", builder=_boom_builder, mode="analyze")])
        manifest = build_sweep_manifest(outcomes, wall_time=1.5)
        assert manifest["failures"] == 1
        assert manifest["wall_time_s"] == 1.5
        bad_row = manifest["task_summaries"][1]
        assert bad_row["error"] == "ValueError: builder exploded"
        assert "\n" not in bad_row["error"]

    def test_manifest_out_written_and_json_clean(self, tmp_path):
        path = tmp_path / "sweep_manifest.json"
        outcomes = run_sweep(_analyze_tasks((4,)), manifest_out=str(path))
        manifest = json.loads(path.read_text())
        assert manifest["tasks"] == 1
        assert manifest["wall_time_s"] > 0
        assert (manifest["events"]["accesses"]
                == outcomes[0].stats.accesses)
        assert "metrics" not in manifest  # obs was disabled

    def test_manifest_merges_worker_metrics(self, obs_on, tmp_path):
        path = tmp_path / "sweep_manifest.json"
        run_sweep(_analyze_tasks((4, 5)), jobs=2, manifest_out=str(path))
        manifest = json.loads(path.read_text())
        counters = manifest["metrics"]["counters"]
        assert counters["sweep.tasks"] == 2
        assert counters["analyzer.batch_events"] > 0


class TestVariantBuilder:
    def test_variant_builder_with_args(self):
        params = SweepParams(n=4, mm=4, nm=2, noct=1)
        out = run_sweep([SweepTask(key="b2", builder=build_variant,
                                   args=("block2", params), mode="measure",
                                   measure_kwargs={"name": "b2"})])[0]
        assert out.result.name == "b2"
        assert set(out.totals) == {"L2", "L3", "TLB"}
