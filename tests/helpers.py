"""Shared test utilities: naive reference implementations and tiny kernels.

The naive oracles here are deliberately simple (O(n^2) scans, explicit LRU
stacks) so their correctness is obvious; the real implementations are tested
against them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang import (
    MemoryLayout, Program, Var, load, loop, program, routine, stmt, store,
)


class NaiveReuseDistance:
    """Reference reuse-distance computation: an explicit LRU stack."""

    def __init__(self, block_size: int = 1) -> None:
        self.block_size = block_size
        self.stack: List[int] = []  # most recent last

    def access(self, addr: int) -> Optional[int]:
        """Return the reuse distance, or None for a first access."""
        block = addr // self.block_size
        if block in self.stack:
            pos = self.stack.index(block)
            distance = len(self.stack) - pos - 1
            self.stack.pop(pos)
            self.stack.append(block)
            return distance
        self.stack.append(block)
        return None


class NaiveLRUCache:
    """Reference fully-associative LRU cache."""

    def __init__(self, capacity_blocks: int, block_size: int) -> None:
        self.capacity = capacity_blocks
        self.block_size = block_size
        self.stack: List[int] = []
        self.misses = 0

    def access(self, addr: int) -> bool:
        block = addr // self.block_size
        if block in self.stack:
            self.stack.remove(block)
            self.stack.append(block)
            return True
        self.misses += 1
        if len(self.stack) >= self.capacity:
            self.stack.pop(0)
        self.stack.append(block)
        return False


def naive_binomial_sf(n: int, p: float, k: int) -> float:
    """P(X >= k) for X ~ Binomial(n, p), by direct summation."""
    from math import comb
    return sum(comb(n, i) * p ** i * (1 - p) ** (n - i) for i in range(k, n + 1))


def two_array_kernel(n: int = 16, m: int = 16,
                     transposed_b: bool = False) -> Program:
    """A(i,j) = A(i,j) + B(...) over a 2D nest; the workhorse fixture."""
    lay = MemoryLayout()
    a = lay.array("A", n, m)
    b = lay.array("B", max(n, m), max(n, m))
    i, j = Var("i"), Var("j")
    b_ref = load(b, j, i) if transposed_b else load(b, i, j)
    nest = loop("j", 1, m,
                loop("i", 1, n,
                     stmt(load(a, i, j), b_ref, store(a, i, j), ops=1,
                          loc="k.f:3"),
                     name="I"),
                name="J")
    return program("two_array", lay, [routine("main", nest)])


def collect_trace(prog: Program) -> List[Tuple[int, int, bool]]:
    """Run a program and return its (rid, addr, is_store) access trace."""
    from repro.lang import TraceRecorder, run_program
    rec = TraceRecorder()
    run_program(prog, rec)
    return [(e[1], e[2], e[3]) for e in rec.accesses()]
