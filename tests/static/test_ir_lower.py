"""IR lowering structure and use-def chain traversals."""

import pytest

from repro.lang import (
    MemoryLayout, Var, assign, idx, load, loop, program, routine, stmt,
    store,
)
from repro.static import (
    address_slice_of_ref, backward_slice, feeding_loads, loop_vars_reaching,
    lower_program, params_reaching,
)
from repro.static import ir as irmod


def _lowered(build):
    prog = build()
    return prog, lower_program(prog)


def _simple():
    lay = MemoryLayout()
    a = lay.array("A", 10, 10)
    nest = loop("j", 1, "N",
                loop("i", 1, 10, stmt(load(a, Var("i"), Var("j"))),
                     name="I"),
                name="J")
    return program("p", lay, [routine("main", nest)], params={"N": 10})


class TestLowering:
    def test_every_ref_has_address_register(self):
        prog, ir = _lowered(_simple)
        rir = ir["main"]
        for ref in prog.refs:
            assert ref.rid in rir.ref_addr

    def test_loads_and_stores_emitted(self):
        lay = MemoryLayout()
        a = lay.array("A", 4)
        nest = loop("i", 1, 4, stmt(load(a, Var("i")), store(a, Var("i"))))
        prog = program("p", lay, [routine("main", nest)])
        rir = lower_program(prog)["main"]
        ops = [inst.op for inst in rir.references()]
        assert ops == [irmod.LOAD, irmod.STORE]

    def test_global_op_anchors_base(self):
        prog, ir = _lowered(_simple)
        rir = ir["main"]
        a = prog.layout.get("A")
        globals_ = [i for i in rir.instrs if i.op == irmod.GLOBAL]
        assert globals_
        assert all(g.imm == a.base for g in globals_)
        assert all(g.meta == "A" for g in globals_)

    def test_loop_vars_registered(self):
        prog, ir = _lowered(_simple)
        assert set(ir["main"].loop_vars.values()) == {"i", "j"}


class TestUseDef:
    def test_backward_slice_contains_address_arith(self):
        prog, ir = _lowered(_simple)
        rir = ir["main"]
        slice_ = address_slice_of_ref(rir, 0)
        ops = {inst.op for inst in slice_}
        assert irmod.GLOBAL in ops
        assert irmod.MUL in ops and irmod.ADD in ops

    def test_loop_vars_reaching_address(self):
        prog, ir = _lowered(_simple)
        rir = ir["main"]
        assert loop_vars_reaching(rir, rir.ref_addr[0]) == {"i", "j"}

    def test_params_reaching_bound_not_address(self):
        prog, ir = _lowered(_simple)
        rir = ir["main"]
        assert params_reaching(rir, rir.ref_addr[0]) == set()

    def test_feeding_loads_for_indirect(self):
        lay = MemoryLayout()
        ixa = lay.index_array("ix", 8)
        a = lay.array("A", 8)
        nest = loop("m", 1, 8, stmt(store(a, idx(ixa, Var("m")))), name="M")
        prog = program("p", lay, [routine("main", nest)])
        rir = lower_program(prog)["main"]
        store_rid = next(r.rid for r in prog.refs if r.is_store)
        loads = feeding_loads(rir, rir.ref_addr[store_rid])
        assert len(loads) == 1
        ix_rid = next(r.rid for r in prog.refs if r.array == "ix")
        assert loads[0].rid == ix_rid

    def test_scalar_assign_flows_into_use(self):
        lay = MemoryLayout()
        ixa = lay.index_array("ix", 8)
        a = lay.array("A", 8)
        nest = loop("m", 1, 8,
                    assign("t", idx(ixa, Var("m"))),
                    stmt(store(a, Var("t"))), name="M")
        prog = program("p", lay, [routine("main", nest)])
        rir = lower_program(prog)["main"]
        store_rid = next(r.rid for r in prog.refs if r.is_store)
        loads = feeding_loads(rir, rir.ref_addr[store_rid])
        assert len(loads) == 1

    def test_instr_repr(self):
        prog, ir = _lowered(_simple)
        text = repr(ir["main"].instrs[0])
        assert text  # smoke: renders without error
