"""Closed-form symbolic scaling: derive once, evaluate anywhere.

The contract under test (mod:`repro.static.closedform`): a Derivation
is fitted ONCE per kernel shape from a small lattice of enumerated
static profiles, and then evaluating it at ANY bounds must synthesize a
state byte-identical (``pickle.dumps`` equality — dict order included)
to ``static_profile`` at those bounds.  That must hold on every path:
pure closed form, per-reference fallback (spliced from one enumerated
run), and global fallback — the paths may differ in cost, never in
bytes.
"""

import pickle
import random
from fractions import Fraction

import pytest

from repro.apps.registry import build_workload
from repro.model import MachineConfig
from repro.obs import metrics as _obs
from repro.static.closedform import (
    ClosedFormUnsupported, Derivation, _eval_poly, _fit_poly, _int_eval,
    _int_poly, clear_memo, default_samples, derivation_key, derive,
    force_fallback, get_derivation,
)
from repro.static.profile import static_profile

CFG = MachineConfig.scaled_itanium2()
GRANS = CFG.granularities()


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


def _reference(workload, **params):
    """Enumerated ground truth: (pickled state, stats)."""
    state, stats = static_profile(build_workload(workload, **params),
                                  GRANS)
    return pickle.dumps(state), stats


class TestPolyCore:
    def test_fit_recovers_exact_polynomial(self):
        rng = random.Random(7)
        for _ in range(20):
            deg = rng.randrange(0, 4)
            coeffs = [Fraction(rng.randrange(-50, 50),
                               rng.choice((1, 2, 4)))
                      for _ in range(deg + 1)]
            xs = sorted(rng.sample(range(1, 200), 6))
            ys = [sum(c * x ** k for k, c in enumerate(coeffs))
                  for x in xs]
            poly = _fit_poly(xs, ys)
            # trailing zeros trimmed: degree never exceeds the truth
            assert len(poly) <= deg + 1
            for x in (0, 1, 17, 1000, 10 ** 7):
                assert _eval_poly(poly, x) == sum(
                    c * x ** k for k, c in enumerate(coeffs))

    def test_int_poly_matches_fraction_eval(self):
        rng = random.Random(11)
        for _ in range(20):
            poly = tuple(Fraction(rng.randrange(-9, 9),
                                  rng.randrange(1, 9))
                         for _ in range(rng.randrange(1, 5)))
            den, coeffs = _int_poly(poly)
            for x in (0, 3, 64, 10 ** 6):
                assert Fraction(_int_eval(coeffs, x), den) \
                    == _eval_poly(poly, x)


class TestDefaultSamples:
    def test_targets_are_lattice_members(self):
        xs = default_samples("triad", "n", [4096])
        assert 4096 in xs and len(xs) >= 7
        assert all(x >= 8 for x in xs)

    def test_single_target_stride_is_power_of_two(self):
        # branch points of the blocks quasi-polynomial follow
        # bound mod cache-block; a power-of-two stride stays on
        # one residue class so the fit never straddles a piece
        xs = default_samples("triad", "n", [2_000_000])
        steps = {b - a for a, b in zip(xs, xs[1:])}
        assert len(steps) == 1
        step = steps.pop()
        assert step & (step - 1) == 0

    def test_multi_target_uses_gcd_stride(self):
        xs = default_samples("sweep3d", "mesh", [4, 8, 12])
        assert {4, 8, 12} <= set(xs)
        assert all((b - a) % 4 == 0 for a, b in zip(xs, xs[1:]))

    def test_empty_targets_rejected(self):
        with pytest.raises(ClosedFormUnsupported):
            default_samples("triad", "n", [])


class TestTriadPureClosedForm:
    """Triad is exactly polynomial in n: no fallback anywhere."""

    def test_derivation_is_total(self):
        d = derive("triad", {"n": 256, "steps": 2})
        assert not d.fallback_rids
        assert not d.global_fallback
        assert d.free == "n" and d.fixed["steps"] == 2

    def test_byte_identity_across_lattice(self):
        d = derive("triad", {"n": 512, "steps": 2})
        for n in d.xs:
            ref, ref_stats = _reference("triad", n=n, steps=2)
            state, stats, n_fb = d.evaluate(n)
            assert pickle.dumps(state) == ref
            assert vars(stats) == vars(ref_stats)
            assert n_fb == 0

    def test_byte_identity_at_randomized_bounds(self):
        """Any in-hull bound — on-lattice or off — must match the
        enumerated profile byte-for-byte; off-lattice values may take
        the (counted) fallback path but never change the answer."""
        d = derive("triad", {"n": 512, "steps": 2})
        rng = random.Random(3)
        lo, hi = d.domain
        for n in sorted(rng.sample(range(lo, hi + 1), 8)):
            ref, ref_stats = _reference("triad", n=n, steps=2)
            state, stats, _n_fb = d.evaluate(n)
            assert pickle.dumps(state) == ref
            assert vars(stats) == vars(ref_stats)

    def test_out_of_hull_requires_extrapolate(self):
        d = derive("triad", {"n": 256, "steps": 2})
        beyond = d.xs[-1] * 2
        ref, _ = _reference("triad", n=beyond, steps=2)
        # without extrapolate: full enumeration fallback, still identical
        state, _stats, n_fb = d.evaluate(beyond)
        assert pickle.dumps(state) == ref and n_fb >= 1
        # with extrapolate: triad's polynomials are globally exact
        state, _stats, n_fb = d.evaluate(beyond, extrapolate=True)
        assert pickle.dumps(state) == ref and n_fb == 0


@pytest.mark.parametrize("workload,free,params,samples,values", [
    ("sweep3d", "mesh", {}, range(2, 9), (4, 7)),
    ("cg", "grid", {}, range(4, 18, 2), (8, 14)),
    ("gtc", "micell", {}, range(1, 8), (3, 6)),
], ids=["sweep3d", "cg", "gtc"])
class TestWorkloadEquivalence:
    """Irregular workloads may lean on per-reference or global fallback
    (their atom structure genuinely varies with the bound) — the
    degradation is counted, and the bytes still must not move."""

    def test_byte_identity_with_counted_fallback(self, workload, free,
                                                 params, samples, values,
                                                 obs_on):
        d = derive(workload, dict(params), free=free,
                   samples=list(samples))
        for v in values:
            ref, ref_stats = _reference(workload,
                                        **{**params, free: v})
            before = _obs.counter("static.closedform_fallbacks").value
            state, stats, n_fb = d.evaluate(v)
            after = _obs.counter("static.closedform_fallbacks").value
            assert pickle.dumps(state) == ref
            assert vars(stats) == vars(ref_stats)
            assert after - before == n_fb


class TestForcedFallback:
    def test_forced_rids_splice_identically(self, obs_on):
        d = derive("triad", {"n": 256, "steps": 2})
        n = d.xs[2]
        ref, ref_stats = _reference("triad", n=n, steps=2)
        for rids in ([0], [1, 4], list(range(6))):
            forced = force_fallback(d, rids)
            before = _obs.counter("static.closedform_fallbacks").value
            state, stats, n_fb = forced.evaluate(n)
            assert pickle.dumps(state) == ref
            assert vars(stats) == vars(ref_stats)
            assert n_fb >= len(rids)
            assert _obs.counter(
                "static.closedform_fallbacks").value - before == n_fb

    def test_force_fallback_is_a_copy(self):
        d = derive("triad", {"n": 256, "steps": 2})
        forced = force_fallback(d, [0])
        assert not d.fallback_rids
        assert 0 in forced.fallback_rids


class TestDerivationCache:
    def test_key_is_bounds_free(self):
        # two requests differing only in the requested bound share a
        # lattice — and therefore a derivation — when the bound sits
        # on the same default lattice
        k1 = derivation_key("triad", {"n": 512}, None,
                            samples=[64, 128, 192, 256, 320])
        k2 = derivation_key("triad", {"n": 4096}, None,
                            samples=[64, 128, 192, 256, 320])
        assert k1 == k2

    def test_memo_and_disk_roundtrip(self, tmp_path, obs_on):
        from repro.tools.cache import AnalysisCache
        cache = AnalysisCache(str(tmp_path))
        spec = dict(params={"n": 256, "steps": 2})
        d1 = get_derivation("triad", spec["params"], cache=cache)
        derives = _obs.counter("static.closedform_derives").value
        assert derives == 1
        # second lookup: in-process memo
        d2 = get_derivation("triad", spec["params"], cache=cache)
        assert d2 is d1
        assert _obs.counter("static.closedform_cache_hits").value == 1
        # service restart: memo gone, disk cache survives
        clear_memo()
        d3 = get_derivation("triad", spec["params"], cache=cache)
        assert _obs.counter("static.closedform_derives").value == derives
        assert _obs.counter("static.closedform_cache_hits").value == 2
        assert d3.shape_key == d1.shape_key
        # the unpickled derivation still evaluates byte-identically
        n = d3.xs[1]
        ref, _ = _reference("triad", n=n, steps=2)
        state, _stats, n_fb = d3.evaluate(n)
        assert pickle.dumps(state) == ref and n_fb == 0

    def test_pickle_roundtrip_preserves_evaluation(self):
        d = derive("triad", {"n": 256, "steps": 2})
        d.evaluate(d.xs[0])  # compile the fast tables pre-pickle
        clone = pickle.loads(pickle.dumps(d))
        assert isinstance(clone, Derivation)
        for n in clone.xs:
            ref, _ = _reference("triad", n=n, steps=2)
            state, _stats, _ = clone.evaluate(n)
            assert pickle.dumps(state) == ref


class TestSessionAndSweep:
    def test_session_closed_form_state_matches_static(self):
        from repro.apps.kernels import stream_triad
        from repro.tools import AnalysisSession
        plain = AnalysisSession(stream_triad(128, 2), config=CFG,
                                engine="static").run()
        cf = AnalysisSession(
            stream_triad(128, 2), config=CFG, engine="static",
            closed_form=True,
            closed_form_spec={"workload": "triad",
                              "params": {"n": 128, "steps": 2}}).run()
        assert pickle.dumps(cf.analyzer.dump_state()) \
            == pickle.dumps(plain.analyzer.dump_state())
        assert cf.totals() == plain.totals()
        assert "closedform_evaluate" in cf.manifest.phases

    def test_session_closed_form_requires_static_engine(self):
        from repro.apps.kernels import stream_triad
        from repro.tools import AnalysisSession
        with pytest.raises(ValueError):
            AnalysisSession(stream_triad(64, 2), config=CFG,
                            closed_form=True,
                            closed_form_spec={"workload": "triad",
                                              "params": {"n": 64}})

    def test_sweep_shares_one_derivation(self, obs_on):
        """run_sweep derives once in the parent and every unit's state
        is byte-identical to its enumerated static counterpart."""
        from repro.apps.kernels import stream_triad
        from repro.tools import SweepTask, run_sweep
        sizes = (64, 128, 192)
        tasks = [SweepTask(key=n, builder=stream_triad, args=(n, 2),
                           engine="static",
                           closed_form={"workload": "triad",
                                        "params": {"n": n, "steps": 2}})
                 for n in sizes]
        outcomes = run_sweep(tasks, jobs=2)
        assert _obs.counter("static.closedform_derives").value == 1
        for out, n in zip(outcomes, sizes):
            assert out.error is None
            ref, _ = _reference("triad", n=n, steps=2)
            assert pickle.dumps(out.state) == ref

    def test_sweep_task_rejects_closed_form_off_static(self):
        from repro.apps.kernels import stream_triad
        from repro.tools import SweepTask
        with pytest.raises(ValueError):
            SweepTask(key=1, builder=stream_triad, args=(64, 2),
                      closed_form={"workload": "triad",
                                   "params": {"n": 64}})


class TestScalingSeed:
    def test_fit_closed_form_matches_enumerated_fit(self):
        from repro.core.analyzer import ReuseAnalyzer
        from repro.model.scaling import ScalingModel
        d = derive("triad", {"n": 512, "steps": 2})
        sizes = list(d.xs[-4:])
        cf_model = ScalingModel.fit_closed_form(d, sizes)
        dbs = []
        for n in sizes:
            state, _stats = static_profile(
                build_workload("triad", n=n, steps=2), GRANS)
            dbs.append(ReuseAnalyzer.from_state(state).db("line"))
        ref_model = ScalingModel.fit([float(s) for s in sizes], dbs)
        level = CFG.level("L2")
        for probe in (300, 700, 1500):
            assert cf_model.predict_misses(probe, level) \
                == pytest.approx(ref_model.predict_misses(probe, level))


@pytest.mark.slow
class TestFullBoundsMatrix:
    """Nightly (--runslow): byte-identity over a randomized bounds
    matrix across all four paper workloads — every in-hull bound, on-
    or off-lattice, pure or fallback, must reproduce the enumerated
    static profile byte-for-byte."""

    MATRIX = [
        ("triad", "n", {"steps": 2}, None, 4096, 12),
        ("sweep3d", "mesh", {}, range(2, 11), None, 6),
        ("cg", "grid", {}, range(4, 22, 2), None, 6),
        ("gtc", "micell", {}, range(1, 9), None, 5),
    ]

    @pytest.mark.parametrize("workload,free,params,samples,target,probes",
                             MATRIX, ids=[m[0] for m in MATRIX])
    def test_randomized_bounds(self, workload, free, params, samples,
                               target, probes):
        req = dict(params)
        if target is not None:
            req[free] = target
        d = derive(workload, req, free=free,
                   samples=list(samples) if samples else None)
        lo, hi = d.domain
        rng = random.Random(hash((workload, lo, hi)) & 0xFFFF)
        values = set(d.xs[:2]) | set(d.xs[-2:])
        while len(values) < min(probes + 4, hi - lo + 1):
            values.add(rng.randrange(lo, hi + 1))
        for v in sorted(values):
            ref, ref_stats = _reference(workload, **{**params, free: v})
            state, stats, _n_fb = d.evaluate(v)
            assert pickle.dumps(state) == ref, (workload, v)
            assert vars(stats) == vars(ref_stats), (workload, v)


class TestValidateAndJobs:
    def test_validate_reports_closed_form_identity(self):
        from repro.static.validate import validate_workload
        report = validate_workload("triad", {"n": 96}, closed_form=True)
        assert report.closed_form_identical is True
        assert report.closed_form_fallbacks == 0
        assert report.passed
        assert "closed-form: byte-identical" in report.render()

    def test_jobspec_gates_closed_form_on_static(self):
        from repro.service.jobs import JobSpec, SpecError
        spec = JobSpec.from_dict({"workload": "triad",
                                  "engine": "static",
                                  "closed_form": True})
        assert spec.closed_form
        with pytest.raises(SpecError):
            JobSpec.from_dict({"workload": "triad",
                               "engine": "fenwick",
                               "closed_form": True})
