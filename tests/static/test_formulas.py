"""Symbolic formula recovery from the lowered IR."""

import pytest

from repro.lang import (
    FloorDiv, MemoryLayout, Mod, Var, assign, idx, load, loop, program,
    routine, stmt, store,
)
from repro.static import StaticAnalysis
from repro.static.formulas import SymFormula


def _analyze(build):
    prog = build()
    return prog, StaticAnalysis(prog)


class TestAffineRecovery:
    def test_2d_reference(self):
        def build():
            lay = MemoryLayout()
            a = lay.array("A", 10, 10)
            nest = loop("j", 1, 10,
                        loop("i", 1, 10,
                             stmt(load(a, Var("i") + 2, Var("j"))), name="I"),
                        name="J")
            return program("p", lay, [routine("main", nest)])

        prog, sa = _analyze(build)
        rid = 0
        f = sa.formula(rid)
        a = prog.layout.get("A")
        assert f.lvars == {"i": 8, "j": 80}
        assert f.const == a.base + 2 * 8 - 8 - 80
        assert f.symbol == a.base

    def test_strides_per_loop(self):
        def build():
            lay = MemoryLayout()
            a = lay.array("A", 10, 10)
            nest = loop("j", 1, 10,
                        loop("i", 1, 10, stmt(load(a, Var("i"), Var("j"))),
                             step=2, name="I"),
                        name="J")
            return program("p", lay, [routine("main", nest)])

        prog, sa = _analyze(build)
        i_sid = prog.scope_named("I").sid
        j_sid = prog.scope_named("J").sid
        assert sa.stride(0, i_sid).bytes == 16      # step 2 x 8B
        assert sa.stride(0, j_sid).bytes == 80

    def test_record_field_offset_in_formula(self):
        def build():
            lay = MemoryLayout()
            z = lay.array("z", 16, fields=("a", "b", "c"))
            nest = loop("m", 1, 16, stmt(load(z, Var("m"), field="b")),
                        name="M")
            return program("p", lay, [routine("main", nest)])

        prog, sa = _analyze(build)
        z = prog.layout.get("z")
        f = sa.formula(0)
        assert f.const == z.base + 8 - 24
        assert f.lvars == {"m": 24}

    def test_first_location_substitutes_bounds(self):
        def build():
            lay = MemoryLayout()
            a = lay.array("A", 32)
            nest = loop("i", 5, 20, stmt(load(a, Var("i"))), name="I")
            return program("p", lay, [routine("main", nest)])

        prog, sa = _analyze(build)
        first = sa.first_loc(0)
        a = prog.layout.get("A")
        assert first.lvars == {}
        assert first.const == a.base + 4 * 8     # i = 5

    def test_first_location_with_outer_dependent_bound(self):
        def build():
            lay = MemoryLayout()
            a = lay.array("A", 64, 64)
            nest = loop("j", 1, 8,
                        loop("i", Var("j"), 8,
                             stmt(load(a, Var("i"), Var("j"))), name="I"),
                        name="J")
            return program("p", lay, [routine("main", nest)])

        prog, sa = _analyze(build)
        first = sa.first_loc(0)
        # i -> j -> 1: fully resolved
        assert first.lvars == {}


class TestTaint:
    def test_indirect_subscript_flagged(self):
        def build():
            lay = MemoryLayout()
            ix = lay.index_array("ix", 16)
            a = lay.array("A", 16)
            nest = loop("m", 1, 16, stmt(store(a, idx(ix, Var("m")))),
                        name="M")
            return program("p", lay, [routine("main", nest)])

        prog, sa = _analyze(build)
        store_rid = next(r.rid for r in prog.refs if r.is_store)
        m_sid = prog.scope_named("M").sid
        s = sa.stride(store_rid, m_sid)
        assert s.indirect
        assert not s.is_constant
        # ...but the index array itself is accessed with constant stride
        ix_rid = next(r.rid for r in prog.refs if r.array == "ix")
        assert sa.stride(ix_rid, m_sid).bytes == 8

    def test_scalar_assigned_index_is_indirect(self):
        def build():
            lay = MemoryLayout()
            ix = lay.index_array("ix", 16)
            a = lay.array("A", 16)
            nest = loop("m", 1, 16,
                        assign("t", idx(ix, Var("m"))),
                        stmt(store(a, Var("t"))), name="M")
            return program("p", lay, [routine("main", nest)])

        prog, sa = _analyze(build)
        store_rid = next(r.rid for r in prog.refs if r.is_store)
        s = sa.stride(store_rid, prog.scope_named("M").sid)
        assert s.indirect

    def test_mod_subscript_irregular(self):
        def build():
            lay = MemoryLayout()
            a = lay.array("A", 16)
            nest = loop("m", 1, 64, stmt(load(a, Mod(Var("m"), 16) + 1)),
                        name="M")
            return program("p", lay, [routine("main", nest)])

        prog, sa = _analyze(build)
        s = sa.stride(0, prog.scope_named("M").sid)
        assert s.irregular
        assert not s.indirect

    def test_loop_invariant_indirection_not_indirect(self):
        """An index loaded outside the loop gives constant stride inside."""
        def build():
            lay = MemoryLayout()
            ix = lay.index_array("ix", 4)
            ix.values[:] = [2, 0, 0, 0]
            a = lay.array("A", 16, 16)
            nest = [
                assign("base", idx(ix, 1)),
                loop("m", 1, 16, stmt(load(a, Var("m"), Var("base"))),
                     name="M"),
            ]
            return program("p", lay, [routine("main", *nest)])

        prog, sa = _analyze(build)
        a_rid = next(r.rid for r in prog.refs if r.array == "A")
        s = sa.stride(a_rid, prog.scope_named("M").sid)
        assert s.bytes == 8
        assert not s.indirect and not s.irregular


class TestFormulaAlgebra:
    def test_delta_const(self):
        f1 = SymFormula(100, lvars={"i": 8})
        f2 = SymFormula(60, lvars={"i": 8})
        assert f1.delta_const(f2) == 40

    def test_delta_const_mismatched_vars(self):
        f1 = SymFormula(100, lvars={"i": 8})
        f2 = SymFormula(60, lvars={"j": 8})
        assert f1.delta_const(f2) is None

    def test_delta_const_tainted(self):
        f1 = SymFormula(100, irregular_vars={"i"})
        assert f1.delta_const(SymFormula(60)) is None

    def test_scale_and_combine(self):
        f = SymFormula(3, params={"N": 2}, lvars={"i": 1})
        g = f.scale(4)
        assert g.const == 12 and g.params == {"N": 8} and g.lvars == {"i": 4}
        h = g.sub(f.scale(4))
        assert h.is_constant and h.const == 0

    def test_symbol_survives_add(self):
        f = SymFormula(1000, symbol=1000)
        g = f.add(SymFormula(8, lvars={"i": 8}))
        assert g.symbol == 1000

    def test_substitute(self):
        f = SymFormula(0, lvars={"i": 8, "j": 80})
        out = f.substitute("i", SymFormula(5))
        assert out.const == 40
        assert out.lvars == {"j": 80}
