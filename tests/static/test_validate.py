"""Static engine cross-validation against dynamic ground truth.

The gating contract lives in :mod:`repro.static.validate`: every
capacity band carrying at least 2% of a granularity's dynamic mass must
agree within 10% relative error.  These tests pin that contract on the
paper applications at two sizes each, and pin *exactness* — raw-dict
equality, not band agreement — on a nest simple enough to hand-check.
"""

import pytest

from repro.static.validate import (
    VALIDATION_MATRIX, BandReport, compare_states, validate_workload,
)


def _case_id(case):
    name, params = case
    return name + "-" + "-".join(str(v) for _, v in sorted(params.items()))


class TestValidationMatrix:
    """The CI grid: paper applications at small-to-medium sizes."""

    @pytest.mark.parametrize("case", VALIDATION_MATRIX, ids=_case_id)
    def test_within_tolerance(self, case):
        name, params = case
        report = validate_workload(name, params)
        assert report.passed, "\n" + report.render()
        assert report.accesses > 0
        # every granularity contributes at least one gated band — an
        # empty gate set would pass vacuously
        gated = {b.granularity for b in report.bands if b.gated}
        assert gated == {b.granularity for b in report.bands}


class TestTriadExact:
    """STREAM triad is single-event per (ref, scope): the static model
    must reproduce the dynamic histograms *exactly*, bin for bin."""

    def test_raw_dicts_identical(self):
        from repro.apps.registry import build_workload
        from repro.core.analyzer import ReuseAnalyzer
        from repro.lang.batch import BatchExecutor
        from repro.model.config import MachineConfig
        from repro.static.profile import static_profile

        grans = MachineConfig.scaled_itanium2().granularities()
        program = build_workload("triad", n=64, steps=2)

        analyzer = ReuseAnalyzer(grans, engine="numpy")
        BatchExecutor(program, analyzer).run()
        dynamic = analyzer.dump_state()
        static, stats = static_profile(program, grans)

        assert stats.accesses == dynamic["clock"]
        for gd, gs in zip(dynamic["grans"], static["grans"]):
            assert gs["name"] == gd["name"]
            assert gs["raw"] == gd["raw"]
            assert gs["cold"] == gd["cold"]
            assert gs["blocks"] == gd["blocks"]


class TestBandComparison:
    """compare_states on hand-built states, independent of any engine."""

    @staticmethod
    def _state(line_raw, line_cold):
        return {
            "version": 1, "clock": 0,
            "grans": [{"name": "line", "block_size": 64,
                       "raw": {(0, 0, -1): line_raw},
                       "cold": line_cold, "blocks": len(line_cold)}],
        }

    def test_identical_states_zero_error(self):
        state = self._state({0: 100, 40: 50}, {0: 7})
        bands = compare_states(state, self._state({0: 100, 40: 50}, {0: 7}))
        assert all(b.rel_err == 0.0 for b in bands)
        assert [b.band for b in bands] == ["<64", "64-511", ">=512", "cold"]

    def test_low_share_band_not_gated(self):
        # 1 count out of 1001 in the >=512 band: share ~0.1%, so a huge
        # relative error there must not gate
        from repro.core.histogram import bin_of
        far = bin_of(1024)
        dyn = self._state({0: 1000, far: 1}, {})
        sta = self._state({0: 1000, far: 5}, {})
        bands = {b.band: b for b in compare_states(dyn, sta)}
        assert not bands[">=512"].gated
        assert bands[">=512"].rel_err == pytest.approx(4.0)
        assert bands["<64"].gated

    def test_gated_band_over_tolerance_fails(self):
        dyn = self._state({0: 100}, {0: 50})
        sta = self._state({0: 100}, {0: 80})
        bands = compare_states(dyn, sta)
        cold = next(b for b in bands if b.band == "cold")
        assert cold.gated and cold.rel_err == pytest.approx(0.6)

    def test_bin_midpoint_banding(self):
        # bin 24 covers [64, 80): midpoint 72 >= 64 lands in band 1,
        # even though the bin's low edge touches the boundary
        from repro.core.histogram import bin_of, bin_range
        b = bin_of(64)
        lo, hi = bin_range(b)
        assert lo == 64
        dyn = self._state({b: 10}, {})
        bands = {r.band: r for r in compare_states(dyn, dyn)}
        assert bands["64-511"].dynamic == 10
        assert bands["<64"].dynamic == 0


class TestReportShape:
    def test_report_fields_and_render(self):
        report = validate_workload("triad", {"n": 64, "steps": 2})
        assert report.workload == "triad"
        assert report.params == {"n": 64, "steps": 2}
        assert report.static_s > 0 and report.dynamic_s >= 0
        assert report.max_gated_err == 0.0
        text = report.render()
        assert "triad(n=64, steps=2): PASS" in text
        assert all(isinstance(b, BandReport) for b in report.bands)
