"""Related-reference grouping and object-name recovery."""

import pytest

from repro.apps.kernels import fig2_fragmentation
from repro.lang import (
    MemoryLayout, Var, load, loop, program, routine, stmt, store,
)
from repro.lang.memory import DataObject
from repro.static import StaticAnalysis


class TestRelatedGroups:
    def test_fig2_two_groups(self):
        sa = StaticAnalysis(fig2_fragmentation())
        groups = sa.related_groups()
        names = sorted(g.object_name for g in groups)
        assert names == ["A", "B"]
        assert all(len(g.rids) == 4 for g in groups)

    def test_different_strides_not_related(self):
        lay = MemoryLayout()
        a = lay.array("A", 32, 32)
        i, j = Var("i"), Var("j")
        nest = loop("j", 1, 32,
                    loop("i", 1, 32,
                         stmt(load(a, i, j), load(a, j, i)), name="I"),
                    name="J")
        sa = StaticAnalysis(program("p", lay, [routine("main", nest)]))
        groups = [g for g in sa.related_groups() if g.object_name == "A"]
        assert len(groups) == 2

    def test_different_loops_not_related(self):
        lay = MemoryLayout()
        a = lay.array("A", 32)
        nest = [
            loop("i", 1, 32, stmt(load(a, Var("i"))), name="I1"),
            loop("i2", 1, 32, stmt(store(a, Var("i2"))), name="I2"),
        ]
        sa = StaticAnalysis(program("p", lay, [routine("main", *nest)]))
        groups = [g for g in sa.related_groups() if g.object_name == "A"]
        assert len(groups) == 2

    def test_group_of_ref_covers_all(self):
        prog = fig2_fragmentation()
        sa = StaticAnalysis(prog)
        mapping = sa.group_of_ref()
        assert set(mapping) == {r.rid for r in prog.refs}


class TestNameRecovery:
    def test_negative_offset_still_recovers(self):
        """A reference like A(i, j-1) at j=1 points below A's base; the
        relocation anchor must still resolve to A — even when a previous
        object ends flush against A's base."""
        lay = MemoryLayout()
        filler = lay.array("filler", 512)   # 4096 bytes: no padding gap
        a = lay.array("A", 8, 8)
        assert a.base == filler.base + filler.size  # flush
        i = Var("i")
        nest = loop("j", 2, 8,
                    loop("i", 1, 8, stmt(load(a, i, Var("j") - 1)),
                         name="I"),
                    name="J")
        sa = StaticAnalysis(program("p", lay, [routine("main", nest)]))
        assert sa.object_of(0).name == "A"

    def test_alias_resolves_to_storage_owner(self):
        """An unregistered alias (GTC's particle_array) resolves to the
        object that owns the storage."""
        lay = MemoryLayout()
        z = lay.array("zion", 16, fields=("a", "b"))
        alias = DataObject("particle_array", (16,), fields=("a", "b"))
        alias.base = z.base
        nest = loop("m", 1, 16, stmt(load(alias, Var("m"), field="a")),
                    name="M")
        prog = program("p", lay, [routine("main", nest)])
        sa = StaticAnalysis(prog)
        assert sa.object_of(0).name == "zion"
        # ...while the reference metadata keeps the alias name (Fig 9 rows)
        assert prog.ref(0).array == "particle_array"

    def test_all_refs_recover_in_apps(self):
        from repro.apps.sweep3d import SweepParams, build_original
        prog = build_original(SweepParams(n=4, noct=1))
        sa = StaticAnalysis(prog)
        for ref in prog.refs:
            obj = sa.object_of(ref.rid)
            assert obj is not None, f"no object for {ref!r}"
            if ref.array != "particle_array":
                assert obj.name == ref.array, (
                    f"ref {ref!r}: recovered {obj.name!r}")
