"""Property tests: recovered formulas predict the executed addresses."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (
    MemoryLayout, TraceRecorder, Var, load, loop, program, routine,
    run_program, stmt,
)
from repro.static import StaticAnalysis
from repro.static.formulas import SymFormula


@settings(max_examples=60, deadline=None)
@given(
    ci=st.integers(min_value=0, max_value=3),
    cj=st.integers(min_value=0, max_value=3),
    c0=st.integers(min_value=1, max_value=4),
    step=st.integers(min_value=1, max_value=3),
)
def test_formula_evaluates_to_executed_addresses(ci, cj, c0, step):
    """For affine subscripts, formula(const + coeffs · env) must equal the
    address the executor actually emits, at every iteration."""
    n = 4
    extent = 3 * n * (1 + ci + cj) + c0 + 8
    lay = MemoryLayout()
    a = lay.array("A", extent, extent)
    i, j = Var("i"), Var("j")
    acc = load(a, ci * i + cj * j + c0, i + 1)
    nest = loop("j", 1, n,
                loop("i", 1, n, stmt(acc), step=step, name="I"),
                name="J")
    prog = program("p", lay, [routine("main", nest)])
    rec = TraceRecorder()
    run_program(prog, rec)

    static = StaticAnalysis(prog)
    formula = static.formula(0)
    addrs = iter(rec.addresses())
    for j_val in range(1, n + 1):
        for i_val in range(1, n + 1, step):
            expected = (formula.const
                        + formula.lvars.get("i", 0) * i_val
                        + formula.lvars.get("j", 0) * j_val)
            assert expected == next(addrs)


@settings(max_examples=100, deadline=None)
@given(
    consts=st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
    coeffs=st.dictionaries(st.sampled_from(["i", "j", "k"]),
                           st.integers(-5, 5), max_size=3),
    scale=st.integers(-4, 4),
)
def test_algebra_matches_pointwise_evaluation(consts, coeffs, scale):
    """add/sub/scale on formulas == the same ops on their evaluations."""
    env = {"i": 3, "j": -7, "k": 11}

    def evaluate(f: SymFormula) -> int:
        return f.const + sum(c * env[v] for v, c in f.lvars.items())

    f1 = SymFormula(consts[0], lvars=coeffs)
    f2 = SymFormula(consts[1], lvars={"i": 2, "k": -1})
    assert evaluate(f1.add(f2)) == evaluate(f1) + evaluate(f2)
    assert evaluate(f1.sub(f2)) == evaluate(f1) - evaluate(f2)
    assert evaluate(f1.scale(scale)) == scale * evaluate(f1)


@settings(max_examples=100, deadline=None)
@given(
    c1=st.integers(-100, 100),
    c2=st.integers(-100, 100),
    shared=st.dictionaries(st.sampled_from(["i", "j"]),
                           st.integers(-5, 5).filter(bool), max_size=2),
)
def test_delta_const_iff_same_linear_part(c1, c2, shared):
    f1 = SymFormula(c1, lvars=shared)
    f2 = SymFormula(c2, lvars=shared)
    assert f1.delta_const(f2) == c1 - c2
    f3 = SymFormula(c2, lvars={**shared, "zz": 1})
    assert f1.delta_const(f3) is None
