"""Property tests for the fragmentation algorithm on arrays of records."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.lang import MemoryLayout, Var, load, loop, program, routine, stmt
from repro.lang.executor import run_program
from repro.static import FragmentationAnalysis, StaticAnalysis

FIELDS = tuple(f"f{k}" for k in range(8))


def _aos(field_indices):
    lay = MemoryLayout()
    z = lay.array("z", 64, fields=FIELDS)
    refs = [load(z, Var("m"), field=FIELDS[k]) for k in field_indices]
    nest = loop("m", 1, 64, stmt(*refs), name="M")
    return program("p", lay, [routine("main", nest)])


@settings(max_examples=80, deadline=None)
@given(fields=st.sets(st.integers(0, 7), min_size=1, max_size=8))
def test_record_factor_formula(fields):
    """For unit-stride AoS walks, f = 1 - 8*|fields touched| / record size
    (every touched field contributes one 8-byte chunk to the footprint)."""
    prog = _aos(sorted(fields))
    stats = run_program(prog)
    frag = FragmentationAnalysis(StaticAnalysis(prog), stats)
    record_bytes = len(FIELDS) * 8
    expected = 1.0 - (8 * len(fields)) / record_bytes
    assert frag.by_array()["z"] == pytest.approx(expected)


@settings(max_examples=40, deadline=None)
@given(
    fields_a=st.sets(st.integers(0, 7), min_size=1, max_size=8),
    fields_b=st.sets(st.integers(0, 7), min_size=1, max_size=8),
)
def test_factor_monotone_in_coverage(fields_a, fields_b):
    """Touching a superset of fields never increases the factor."""
    if not fields_a <= fields_b:
        fields_b = fields_a | fields_b

    def factor(fields):
        prog = _aos(sorted(fields))
        stats = run_program(prog)
        return FragmentationAnalysis(
            StaticAnalysis(prog), stats).by_array()["z"]

    assert factor(fields_b) <= factor(fields_a) + 1e-9


@settings(max_examples=40, deadline=None)
@given(step=st.integers(1, 8))
def test_strided_plain_array_factor(step):
    """A stride-``step`` walk over doubles covers 8 of step*8 bytes."""
    lay = MemoryLayout()
    a = lay.array("A", 256)
    nest = loop("m", 1, 256, stmt(load(a, Var("m"))), step=step, name="M")
    prog = program("p", lay, [routine("main", nest)])
    stats = run_program(prog)
    frag = FragmentationAnalysis(StaticAnalysis(prog), stats)
    expected = 1.0 - 1.0 / step
    assert frag.by_array()["A"] == pytest.approx(expected)
