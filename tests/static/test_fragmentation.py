"""Fragmentation analysis: the paper's Fig 2 and the GTC AoS patterns."""

import pytest

from repro.apps.kernels import fig2_fragmentation
from repro.lang import (
    MemoryLayout, Var, load, loop, program, routine, run_program, stmt,
    store, idx,
)
from repro.static import FragmentationAnalysis, StaticAnalysis


def _frag(build):
    prog = build() if callable(build) else build
    stats = run_program(prog)
    static = StaticAnalysis(prog)
    return prog, FragmentationAnalysis(static, stats)


class TestFig2:
    """The paper's worked example: frag(A) = 0.5, frag(B) = 0."""

    def test_factors(self):
        prog, frag = _frag(fig2_fragmentation())
        assert frag.by_array() == pytest.approx({"A": 0.5, "B": 0.0})

    def test_reuse_group_split(self):
        prog, frag = _frag(fig2_fragmentation())
        a_info = next(i for i in frag.infos if i.group.object_name == "A")
        assert len(a_info.reuse_groups) == 2
        assert all(len(g) == 2 for g in a_info.reuse_groups)
        b_info = next(i for i in frag.infos if i.group.object_name == "B")
        assert len(b_info.reuse_groups) == 1
        assert len(b_info.reuse_groups[0]) == 4

    def test_stride_is_32_bytes(self):
        prog, frag = _frag(fig2_fragmentation())
        for info in frag.infos:
            assert info.stride == 32
        # and the chosen loop is the inner I loop
        a_info = frag.infos[0]
        assert prog.scope(a_info.loop_sid).name == "I"

    def test_coverage_values(self):
        prog, frag = _frag(fig2_fragmentation())
        a_info = next(i for i in frag.infos if i.group.object_name == "A")
        b_info = next(i for i in frag.infos if i.group.object_name == "B")
        assert a_info.coverage == 16
        assert b_info.coverage == 32


class TestRecordArrays:
    """Arrays of records: the GTC zion pattern."""

    def _aos(self, fields_used):
        lay = MemoryLayout()
        z = lay.array("z", 64, fields=("a", "b", "c", "d", "e", "f", "g"))
        refs = [load(z, Var("m"), field=f) for f in fields_used]
        nest = loop("m", 1, 64, stmt(*refs), name="M")
        return program("p", lay, [routine("main", nest)])

    def test_one_of_seven_fields(self):
        prog, frag = _frag(self._aos(["a"]))
        assert frag.by_array()["z"] == pytest.approx(1 - 8 / 56)

    def test_two_of_seven_fields(self):
        prog, frag = _frag(self._aos(["a", "e"]))
        assert frag.by_array()["z"] == pytest.approx(1 - 16 / 56)

    def test_all_fields_no_fragmentation(self):
        prog, frag = _frag(self._aos(list("abcdefg")))
        assert frag.by_array()["z"] == pytest.approx(0.0)

    def test_soa_has_no_fragmentation(self):
        lay = MemoryLayout()
        za = lay.array("z_a", 64)
        nest = loop("m", 1, 64, stmt(load(za, Var("m"))), name="M")
        prog, frag = _frag(program("p", lay, [routine("main", nest)]))
        assert frag.by_array().get("z_a", 0.0) == pytest.approx(0.0)


class TestEdgeCases:
    def test_irregular_group_skipped(self):
        lay = MemoryLayout()
        ix = lay.index_array("ix", 32)
        a = lay.array("A", 32)
        nest = loop("m", 1, 32, stmt(load(a, idx(ix, Var("m")))), name="M")
        prog, frag = _frag(program("p", lay, [routine("main", nest)]))
        a_infos = [i for i in frag.infos if i.group.object_name == "A"]
        assert a_infos[0].status == "irregular"
        assert a_infos[0].factor == 0.0

    def test_loop_invariant_reference_no_stride(self):
        lay = MemoryLayout()
        a = lay.array("A", 32)
        nest = loop("m", 1, 32, stmt(load(a, 5)), name="M")
        prog, frag = _frag(program("p", lay, [routine("main", nest)]))
        info = frag.infos[0]
        assert info.status == "no-stride"

    def test_factor_of_unknown_ref_is_zero(self):
        prog, frag = _frag(fig2_fragmentation())
        assert frag.factor_of_ref(99999) == 0.0

    def test_fragmented_groups_filter(self):
        prog, frag = _frag(fig2_fragmentation())
        hot = frag.fragmented_groups(0.25)
        assert all(i.factor > 0.25 for i in hot)
        assert {i.group.object_name for i in hot} == {"A"}

    def test_short_trip_counts_split_groups(self):
        """Refs a full column apart stay in separate reuse groups when the
        loop is too short to close the gap (step-2 interplay)."""
        lay = MemoryLayout()
        a = lay.array("A", 64, 8)
        i = Var("i")
        nest = loop("j", 1, 8,
                    loop("i", 1, 4,   # short trip: 4 iterations of stride 8
                         stmt(load(a, i, Var("j")),
                              load(a, i, Var("j") + 1 - 1),  # same formula
                              store(a, i + 32, Var("j"))),   # 32 rows apart
                         name="I"),
                    name="J")
        prog, frag = _frag(program("p", lay, [routine("main", nest)]))
        info = next(i for i in frag.infos if i.group.object_name == "A")
        flat = sorted(tuple(sorted(g)) for g in info.reuse_groups)
        # the +32-row store cannot be reached within 4 iterations
        assert len(info.reuse_groups) == 2
