"""JobSpec validation and JobStore journal/recovery semantics."""

import json
import os

import pytest

from repro.service.jobs import (
    ARTIFACT_KINDS, JobSpec, JobStore, SpecError, live_trace_refs,
)


class TestJobSpec:
    def test_roundtrip(self):
        spec = JobSpec.from_dict({"workload": "sweep3d",
                                  "params": {"mesh": 6},
                                  "engine": "numpy", "shards": 2,
                                  "artifacts": ["patterns", "xml"]})
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.artifacts == ("patterns", "xml")

    def test_defaults(self):
        spec = JobSpec.from_dict({"workload": "fig1"})
        assert spec.engine == "fenwick"
        assert spec.shards == 1
        assert spec.artifacts == ("patterns", "manifest")
        assert not spec.use_trace_store

    @pytest.mark.parametrize("body,fragment", [
        ({}, "workload"),
        ({"workload": "nope"}, "unknown workload"),
        ({"workload": "sweep3d", "params": {"bogus": 1}}, "unknown params"),
        ({"workload": "sweep3d", "params": "x"}, "params"),
        ({"workload": "sweep3d", "engine": "magic"}, "engine"),
        ({"workload": "sweep3d", "shards": 0}, "shards"),
        ({"workload": "sweep3d", "shards": "many"}, "shards"),
        ({"workload": "sweep3d", "artifacts": []}, "artifacts"),
        ({"workload": "sweep3d", "artifacts": ["gold"]}, "artifacts"),
        ({"workload": "sweep3d", "surprise": 1}, "unknown spec fields"),
        ({"workload": "sweep3d", "spill_mb": "big"}, "spill_mb"),
        ({"workload": "sweep3d", "engine": "static", "shards": 2},
         "no trace to shard"),
        ({"workload": "sweep3d", "engine": "static",
          "use_trace_store": True}, "no trace to spill"),
        ("not a dict", "object"),
    ])
    def test_rejects(self, body, fragment):
        with pytest.raises(SpecError, match=fragment):
            JobSpec.from_dict(body)

    def test_static_engine_accepted(self):
        spec = JobSpec.from_dict({"workload": "sweep3d",
                                  "engine": "static"})
        assert spec.engine == "static"

    def test_artifact_kinds_have_filenames(self):
        for name, fname in ARTIFACT_KINDS.items():
            assert "." in fname, (name, fname)


class TestJobStore:
    def _spec(self):
        return JobSpec.from_dict({"workload": "fig1"})

    def test_submit_creates_spec_and_journal(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.submit("acme", self._spec())
        assert job.state == "queued"
        assert os.path.exists(store.spec_path(job.id))
        lines = open(os.path.join(str(tmp_path),
                                  JobStore.JOURNAL)).read().splitlines()
        assert json.loads(lines[0])["kind"] == "job-journal"
        assert json.loads(lines[1])["event"] == "submit"

    def test_lifecycle_counts(self, tmp_path):
        store = JobStore(str(tmp_path))
        a = store.submit("t1", self._spec())
        b = store.submit("t1", self._spec())
        store.submit("t2", self._spec())
        assert store.queued_count("t1") == 2
        store.mark_started(a.id)
        assert store.queued_count("t1") == 1
        assert store.running_count("t1") == 1
        store.mark_done(a.id, {"L2": 1.0}, [{"name": "patterns",
                                             "digest": "d", "bytes": 3}])
        assert store.running_count("t1") == 0
        store.mark_cancelled(b.id)
        assert store.queued_count("t1") == 0
        assert store.jobs[a.id].terminal
        assert store.jobs[b.id].state == "cancelled"

    def test_recover_requeues_queued_and_running(self, tmp_path):
        store = JobStore(str(tmp_path))
        queued = store.submit("t", self._spec())
        running = store.submit("t", self._spec())
        done = store.submit("t", self._spec())
        store.mark_started(running.id)
        store.mark_started(done.id)
        store.mark_done(done.id, {"L2": 2.0}, [])

        fresh = JobStore(str(tmp_path))
        requeued = fresh.recover()
        ids = {j.id for j in requeued}
        assert ids == {queued.id, running.id}
        assert fresh.jobs[queued.id].resumed == 0
        assert fresh.jobs[running.id].resumed == 1
        assert fresh.resumed_ids == [running.id]
        assert fresh.jobs[done.id].state == "done"

    def test_recover_hydrates_result(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.submit("t", self._spec())
        store.mark_started(job.id)
        from repro.tools.atomicio import atomic_write_text
        atomic_write_text(store.result_path(job.id), json.dumps(
            {"totals": {"L2": 5.0},
             "artifacts": [{"name": "patterns", "digest": "abc",
                            "bytes": 7}]}))
        store.mark_done(job.id, {"L2": 5.0},
                        [{"name": "patterns", "digest": "abc", "bytes": 7}])

        fresh = JobStore(str(tmp_path))
        fresh.recover()
        hydrated = fresh.jobs[job.id]
        assert hydrated.totals == {"L2": 5.0}
        assert hydrated.artifacts[0]["digest"] == "abc"

    def test_recover_tolerates_torn_final_line(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.submit("t", self._spec())
        path = os.path.join(str(tmp_path), JobStore.JOURNAL)
        with open(path, "a") as fh:
            fh.write('{"event": "sta')  # crash mid-append

        fresh = JobStore(str(tmp_path))
        requeued = fresh.recover()
        assert [j.id for j in requeued] == [job.id]
        assert fresh.jobs[job.id].state == "queued"

    def test_recover_unknown_header_starts_fresh(self, tmp_path):
        path = os.path.join(str(tmp_path), JobStore.JOURNAL)
        os.makedirs(os.path.join(str(tmp_path), "jobs"), exist_ok=True)
        with open(path, "w") as fh:
            fh.write('{"kind": "job-journal", "version": 99}\n')
            fh.write('{"event": "submit", "job": "x", "tenant": "t"}\n')
        store = JobStore(str(tmp_path))
        assert store.recover() == []
        assert store.jobs == {}

    def test_recover_missing_journal(self, tmp_path):
        store = JobStore(str(tmp_path))
        assert store.recover() == []

    def test_recover_drops_job_with_unreadable_spec(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.submit("t", self._spec())
        os.unlink(store.spec_path(job.id))
        fresh = JobStore(str(tmp_path))
        assert fresh.recover() == []
        assert job.id not in fresh.jobs


class TestLiveTraceRefs:
    def test_collects_only_live_jobs(self, tmp_path):
        store = JobStore(str(tmp_path))
        spec = JobSpec.from_dict({"workload": "fig1",
                                  "use_trace_store": True})
        live = store.submit("t", spec)
        dead = store.submit("t", spec)
        store.mark_started(live.id)
        store.mark_started(dead.id)
        store.mark_done(dead.id, {}, [])
        from repro.tools.atomicio import atomic_write_text
        atomic_write_text(store.status_path(live.id), json.dumps(
            {"phase": "analyze", "trace_path": "/traces/abc123"}))
        atomic_write_text(store.status_path(dead.id), json.dumps(
            {"phase": "artifacts", "trace_path": "/traces/dead99"}))

        assert live_trace_refs(str(tmp_path)) == ["/traces/abc123"]

    def test_missing_state_dir(self, tmp_path):
        assert live_trace_refs(str(tmp_path / "absent")) == []
