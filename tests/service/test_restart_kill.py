"""SIGKILL durability: a hard-killed server resumes from its job store.

Unlike the in-process restart tests, this one runs ``repro serve`` as a
real subprocess and SIGKILLs the whole process group mid-job — no
graceful teardown, no atexit, nothing.  The restarted server must
replay the journal, re-run the interrupted job, and publish artifacts
that deduplicate content-addressed against any the killed attempt
already wrote.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.service.client import ServiceClient
from repro.service.jobs import JobStore
from repro.service.server import SERVICE_FILE

pytestmark = pytest.mark.skipif(os.name != "posix",
                                reason="needs POSIX process groups")


def _env():
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_server(state_dir):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state-dir", state_dir,
         "--workers", "1"],
        env=_env(), start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    path = os.path.join(state_dir, SERVICE_FILE)
    while time.monotonic() < deadline:
        if os.path.exists(path):
            try:
                info = json.loads(open(path).read())
            except ValueError:
                info = {}
            if info.get("pid") == proc.pid:
                return proc
        if proc.poll() is not None:
            raise AssertionError(f"server died at startup "
                                 f"(rc={proc.returncode})")
        time.sleep(0.05)
    proc.kill()
    raise TimeoutError("server never wrote service.json")


def test_sigkill_mid_job_then_restart_resumes(tmp_path):
    state_dir = str(tmp_path)
    server = _start_server(state_dir)
    job_id = None
    try:
        client = ServiceClient.from_state_dir(state_dir)
        # big enough that the analysis is still running when we kill
        job_id = client.submit({"workload": "sweep3d",
                                "params": {"mesh": 10},
                                "artifacts": ["patterns",
                                              "manifest"]})["id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if client.status(job_id)["state"] == "running":
                break
            time.sleep(0.02)
        else:
            raise TimeoutError("job never started running")
    finally:
        # SIGKILL the whole group: server AND its job worker, no unwind
        os.killpg(server.pid, signal.SIGKILL)
        server.wait(timeout=30)

    # the journal survived the kill intact and replays the job as queued
    store = JobStore(state_dir)
    requeued = store.recover()
    assert [j.id for j in requeued] == [job_id]
    assert store.jobs[job_id].resumed >= 1

    server = _start_server(state_dir)
    try:
        client = ServiceClient.from_state_dir(state_dir)
        done = client.wait(job_id, timeout=180, poll_s=0.2)
        assert done["state"] == "done"
        assert done["resumed"] >= 1
        assert done["totals"]["L2"] > 0
        artifacts = client.artifacts(job_id)
        assert {a["name"] for a in artifacts} == {"patterns", "manifest"}
        # content-addressed: each digest exists exactly once on disk,
        # even if the killed attempt had already published it
        for art in artifacts:
            blob = os.path.join(state_dir, "cache", "blobs",
                                art["digest"][:2],
                                art["digest"] + ".bin")
            assert os.path.exists(blob)
            assert os.path.getsize(blob) == art["bytes"]
        data = client.fetch_artifact(job_id, "patterns")
        assert len(data) == next(a["bytes"] for a in artifacts
                                 if a["name"] == "patterns")
        assert client.metrics()["counters"].get("svc.resumed", 0) >= 1
    finally:
        # graceful this time: SIGTERM must exit 0 (the CI smoke relies
        # on the same contract)
        os.killpg(server.pid, signal.SIGTERM)
        rc = server.wait(timeout=30)
    assert rc == 0
