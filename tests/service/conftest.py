"""Shared fixtures for the service tests."""

import pytest


@pytest.fixture
def scoped_metrics():
    """Isolate the metrics registry: the server flips the global enable
    flag on start (restoring it on stop), and svc.* counters must not
    leak into unrelated tests."""
    from repro.obs import metrics

    with metrics.scoped() as registry:
        try:
            yield registry
        finally:
            metrics.set_enabled(False)


@pytest.fixture
def clean_faults():
    """Guarantee fault specs installed by a test are cleared."""
    from repro.testing import faults

    faults.clear()
    try:
        yield faults
    finally:
        faults.clear()
