"""Retention GC for job records and their artifact blobs.

``repro jobs gc`` ages out *terminal* job records (journal events + job
directories); the digests those records were the last to reference come
back "unpinned" so ``repro cache gc --state-dir`` can reclaim the
actual blob bytes.  The two passes are deliberately separate commands —
job records are the pin roots, so records must go first.
"""

import hashlib
import json
import os
import time

from repro.service.jobs import JobSpec, JobStore
from repro.tools.cache import AnalysisCache

TINY_SPEC = JobSpec(workload="fig1", params={"n": 24, "m": 24})
DAY = 86400.0


def _digest(data):
    return hashlib.sha256(data).hexdigest()


def _age_done_event(store, job_id, ts):
    """Backdate a job's terminal journal event (tests can't wait a week)."""
    path = store._journal_path
    lines = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            try:
                ev = json.loads(line)
            except ValueError:
                lines.append(line)
                continue
            if ev.get("job") == job_id and ev.get("event") == "done":
                ev["ts"] = ts
                line = json.dumps(ev, sort_keys=True) + "\n"
            lines.append(line)
    with open(path, "w", encoding="utf-8") as fh:
        fh.writelines(lines)


def _finish_job(store, tenant, artifacts, finished=None):
    """Submit + complete one job; optionally backdate its completion.

    Writes ``result.json`` the way a worker would, since that is where
    ``recover()`` re-hydrates artifact pins from.
    """
    job = store.submit(tenant, TINY_SPEC)
    store.mark_started(job.id)
    store.mark_done(job.id, {"L1": 1}, artifacts)
    with open(store.result_path(job.id), "w", encoding="utf-8") as fh:
        json.dump({"status": "done", "totals": {"L1": 1},
                   "artifacts": artifacts, "error": ""}, fh)
    if finished is not None:
        job.finished = finished
        _age_done_event(store, job.id, finished)
    return job


def _blob_artifact(cache, name, data):
    digest = _digest(data)
    cache.put_blob(digest, data)
    return {"name": name, "file": f"{name}.bin", "digest": digest,
            "bytes": len(data)}


class TestJobsGC:
    def test_removes_old_terminal_keeps_recent_and_live(self, tmp_path):
        store = JobStore(str(tmp_path))
        now = time.time()
        old = _finish_job(store, "a", [], finished=now - 10 * DAY)
        recent = _finish_job(store, "a", [])
        live = store.submit("a", TINY_SPEC)  # queued: never collected

        result = store.gc(keep_days=7.0, now=now)
        assert result.removed == [old.id]
        assert result.kept == 2
        assert not result.dry_run
        assert old.id not in store.jobs
        assert not os.path.exists(store.job_dir(old.id))
        assert os.path.exists(store.job_dir(recent.id))
        assert os.path.exists(store.job_dir(live.id))

        # the journal rewrite is durable: a fresh replay agrees
        fresh = JobStore(str(tmp_path))
        fresh.recover()
        assert old.id not in fresh.jobs
        assert fresh.jobs[recent.id].state == "done"
        assert fresh.jobs[live.id].state == "queued"

    def test_live_jobs_survive_regardless_of_age(self, tmp_path):
        store = JobStore(str(tmp_path))
        now = time.time()
        stale = store.submit("a", TINY_SPEC)
        stale.created = now - 30 * DAY
        result = store.gc(keep_days=1.0, now=now)
        assert result.removed == []
        assert stale.id in store.jobs

    def test_unpinned_excludes_digests_shared_with_kept_jobs(
            self, tmp_path):
        store = JobStore(str(tmp_path))
        now = time.time()
        shared = {"name": "patterns", "file": "p.bin",
                  "digest": "a" * 64, "bytes": 3}
        only_old = {"name": "manifest", "file": "m.bin",
                    "digest": "b" * 64, "bytes": 3}
        _finish_job(store, "a", [shared, only_old],
                    finished=now - 10 * DAY)
        _finish_job(store, "a", [shared])

        result = store.gc(keep_days=7.0, now=now)
        # the kept job still serves the shared digest: stays pinned
        assert result.unpinned == ["b" * 64]
        assert store.pinned_blob_digests() == {"a" * 64}

    def test_dry_run_reports_without_deleting(self, tmp_path):
        store = JobStore(str(tmp_path))
        now = time.time()
        old = _finish_job(store, "a", [], finished=now - 10 * DAY)

        result = store.gc(keep_days=7.0, now=now, dry_run=True)
        assert result.dry_run
        assert result.removed == [old.id]
        assert result.freed_bytes > 0  # spec.json + result.json at least
        assert old.id in store.jobs
        assert os.path.exists(store.job_dir(old.id))

    def test_finished_age_survives_restart(self, tmp_path):
        """recover() restores ``finished`` from the journal event ts,
        so a fresh process can age records it never saw complete."""
        store = JobStore(str(tmp_path))
        now = time.time()
        job = _finish_job(store, "a", [], finished=now - 10 * DAY)
        fresh = JobStore(str(tmp_path))
        fresh.recover()
        assert fresh.jobs[job.id].finished == job.finished
        result = fresh.gc(keep_days=7.0, now=now)
        assert result.removed == [job.id]


class TestBlobGC:
    def test_unpinned_blobs_reclaimed_pinned_kept(self, tmp_path):
        cache = AnalysisCache(str(tmp_path), shared=True)
        keep = _blob_artifact(cache, "patterns", b"keep me")
        drop = _blob_artifact(cache, "manifest", b"drop me")

        result = cache.gc_blobs({keep["digest"]})
        assert result.evicted == [drop["digest"]]
        assert result.kept == [keep["digest"]]
        assert result.freed_bytes == len(b"drop me")
        assert cache.has_blob(keep["digest"])
        assert not cache.has_blob(drop["digest"])

    def test_dry_run_removes_nothing(self, tmp_path):
        cache = AnalysisCache(str(tmp_path), shared=True)
        drop = _blob_artifact(cache, "manifest", b"drop me")
        result = cache.gc_blobs(set(), dry_run=True)
        assert result.evicted == [drop["digest"]]
        assert cache.has_blob(drop["digest"])

    def test_in_flight_tmp_files_are_skipped(self, tmp_path):
        cache = AnalysisCache(str(tmp_path), shared=True)
        blob = _blob_artifact(cache, "patterns", b"data")
        sub = os.path.dirname(cache._blob_path(blob["digest"]))
        tmp = os.path.join(sub, ".tmp-half-written.bin")
        with open(tmp, "wb") as fh:
            fh.write(b"partial")
        result = cache.gc_blobs({blob["digest"]})
        assert result.evicted == []
        assert os.path.exists(tmp)  # a concurrent writer owns it


class TestGCCommands:
    def _seed_state(self, state_dir):
        """One week-old job pinning a blob nothing else references,
        one fresh job pinning a blob of its own."""
        store = JobStore(state_dir)
        cache = AnalysisCache(os.path.join(state_dir, "cache"),
                              shared=True)
        old_art = _blob_artifact(cache, "patterns", b"old bytes")
        new_art = _blob_artifact(cache, "patterns", b"new bytes")
        old = _finish_job(store, "a", [old_art],
                          finished=time.time() - 10 * DAY)
        recent = _finish_job(store, "a", [new_art])
        return store, cache, old, recent, old_art, new_art

    def test_jobs_gc_then_cache_gc_reclaims_blobs(self, tmp_path,
                                                  capsys):
        from repro.cli import main
        state_dir = str(tmp_path)
        store, cache, old, recent, old_art, new_art = \
            self._seed_state(state_dir)

        assert main(["jobs", "gc", "--state-dir", state_dir,
                     "--keep-days", "7"]) == 0
        out = capsys.readouterr().out
        assert "removed  1 terminal job(s)" in out
        assert old.id in out
        assert "unpinned 1 artifact blob(s)" in out

        assert main(["cache", "gc", "--max-gb", "100",
                     "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert old_art["digest"] in out
        assert not cache.has_blob(old_art["digest"])
        assert cache.has_blob(new_art["digest"])

        # the surviving record still lists and still serves
        assert main(["jobs", "list", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert recent.id in out
        assert old.id not in out

    def test_jobs_gc_dry_run_cli(self, tmp_path, capsys):
        from repro.cli import main
        state_dir = str(tmp_path)
        store, cache, old, *_ = self._seed_state(state_dir)

        assert main(["jobs", "gc", "--state-dir", state_dir,
                     "--keep-days", "7", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "(dry run)" in out
        fresh = JobStore(state_dir)
        fresh.recover()
        assert old.id in fresh.jobs
