"""Admission-control and overload-shedding unit tests."""

import pytest

from repro.service.quota import (
    AdmissionController, OverloadPolicy, TenantQuota,
)


class TestTenantQuota:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(max_concurrent=0)
        with pytest.raises(ValueError):
            TenantQuota(max_queued=-1)


class TestAdmissionController:
    def test_default_quota_applies_to_unknown_tenants(self):
        ctl = AdmissionController(default=TenantQuota(max_queued=2))
        assert ctl.quota_for("anyone").max_queued == 2

    def test_per_tenant_override(self):
        ctl = AdmissionController(
            default=TenantQuota(max_queued=2),
            per_tenant={"ci": TenantQuota(max_queued=64)})
        assert ctl.quota_for("ci").max_queued == 64
        assert ctl.quota_for("other").max_queued == 2

    def test_admit_below_cap(self):
        ctl = AdmissionController(default=TenantQuota(max_queued=3))
        assert ctl.admit("t", queued=2).admitted

    def test_reject_at_cap_with_retry_hint(self):
        ctl = AdmissionController(default=TenantQuota(max_queued=3),
                                  retry_after_s=7.5)
        decision = ctl.admit("t", queued=3)
        assert not decision.admitted
        assert decision.retry_after == 7.5
        assert "t" in decision.reason

    def test_tenants_are_independent(self):
        ctl = AdmissionController(default=TenantQuota(max_queued=1))
        assert not ctl.admit("busy", queued=1).admitted
        assert ctl.admit("idle", queued=0).admitted

    def test_oversize_rejection(self):
        ctl = AdmissionController(retry_after_s=1.5)
        decision = ctl.reject_oversize("t", size=9999, limit=1024)
        assert not decision.admitted
        assert decision.retry_after == 1.5
        assert "9999" in decision.reason

    def test_may_start_respects_concurrency(self):
        ctl = AdmissionController(default=TenantQuota(max_concurrent=2))
        assert ctl.may_start("t", running=1)
        assert not ctl.may_start("t", running=2)


class TestOverloadPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadPolicy(queue_max=-1)
        with pytest.raises(ValueError):
            OverloadPolicy(max_inflight_rss_mb=-0.5)

    def test_disabled_watermarks_never_shed(self):
        policy = OverloadPolicy()  # both watermarks 0 = unbounded
        assert policy.check(10_000, 1e6).admitted

    def test_queue_watermark_sheds_at_limit(self):
        policy = OverloadPolicy(queue_max=4, retry_after_s=9.0)
        assert policy.check(3, 0.0).admitted
        decision = policy.check(4, 0.0)
        assert not decision.admitted
        assert decision.retry_after == 9.0
        assert "queue is full" in decision.reason

    def test_rss_watermark_sheds_at_limit(self):
        policy = OverloadPolicy(max_inflight_rss_mb=512.0)
        assert policy.check(0, 511.9).admitted
        decision = policy.check(0, 512.0)
        assert not decision.admitted
        assert "MiB" in decision.reason

    def test_shed_counter_increments(self, obs_on):
        from repro.obs import metrics
        policy = OverloadPolicy(queue_max=1)
        policy.check(0, 0.0)
        policy.check(1, 0.0)
        policy.check(2, 0.0)
        assert metrics.snapshot()["counters"]["svc.shed"] == 2

    def test_queue_and_rss_are_independent_triggers(self):
        policy = OverloadPolicy(queue_max=4, max_inflight_rss_mb=512.0)
        assert not policy.check(4, 0.0).admitted
        assert not policy.check(0, 512.0).admitted
        assert policy.check(3, 511.0).admitted
