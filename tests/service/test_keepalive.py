"""HTTP keep-alive: persistent connections, caps, timeouts, reconnect.

The server holds each connection open across requests (HTTP/1.1
semantics) up to a per-connection request cap and an idle timeout; the
bundled client reuses one socket and transparently reconnects when the
server drops it.  These tests speak raw sockets where the wire behavior
itself is the contract, and go through :class:`ServiceClient` for the
reuse/reconnect path.
"""

import socket
import time

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ServiceThread


def _recv_response(sock):
    """Read one HTTP response (headers + Content-Length body) off
    ``sock``; returns (status_line, headers_dict, body)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(4096)
        if not chunk:
            raise ConnectionError("server closed mid-headers")
        data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    need = int(headers.get("content-length", "0"))
    while len(body) < need:
        chunk = sock.recv(4096)
        if not chunk:
            raise ConnectionError("server closed mid-body")
        body += chunk
    return lines[0], headers, body


def _get(sock, path, version="HTTP/1.1", extra=""):
    sock.sendall(f"GET {path} {version}\r\nHost: x\r\n{extra}\r\n"
                 .encode("latin-1"))
    return _recv_response(sock)


def _closed(sock, timeout=5.0):
    sock.settimeout(timeout)
    try:
        return sock.recv(1) == b""
    except socket.timeout:
        return False


@pytest.fixture
def service(tmp_path, scoped_metrics):
    config = ServiceConfig(state_dir=str(tmp_path), workers=1,
                           keepalive_max_requests=3,
                           keepalive_idle_s=0.3)
    with ServiceThread(config) as svc:
        yield svc


class TestWireProtocol:
    def test_connection_reused_across_requests(self, service):
        with socket.create_connection(("127.0.0.1", service.port)) as sock:
            for _ in range(2):
                status, headers, body = _get(sock, "/v1/healthz")
                assert "200" in status
                assert headers["connection"] == "keep-alive"
                assert b'"ok"' in body

    def test_request_cap_closes_connection(self, service):
        with socket.create_connection(("127.0.0.1", service.port)) as sock:
            for i in range(3):
                status, headers, _ = _get(sock, "/v1/healthz")
                assert "200" in status
                expected = "close" if i == 2 else "keep-alive"
                assert headers["connection"] == expected
            assert _closed(sock)

    def test_idle_timeout_closes_connection(self, service):
        with socket.create_connection(("127.0.0.1", service.port)) as sock:
            _get(sock, "/v1/healthz")
            start = time.monotonic()
            assert _closed(sock)
            # closed by the 0.3s idle timer, not by test timeout
            assert time.monotonic() - start < 4.0

    def test_http10_closes_by_default(self, service):
        with socket.create_connection(("127.0.0.1", service.port)) as sock:
            _, headers, _ = _get(sock, "/v1/healthz", version="HTTP/1.0")
            assert headers["connection"] == "close"
            assert _closed(sock)

    def test_http10_opts_into_keepalive(self, service):
        with socket.create_connection(("127.0.0.1", service.port)) as sock:
            _, headers, _ = _get(sock, "/v1/healthz", version="HTTP/1.0",
                                 extra="Connection: keep-alive\r\n")
            assert headers["connection"] == "keep-alive"
            _, headers, _ = _get(sock, "/v1/healthz", version="HTTP/1.0",
                                 extra="Connection: keep-alive\r\n")
            assert headers["connection"] == "keep-alive"

    def test_explicit_close_honored(self, service):
        with socket.create_connection(("127.0.0.1", service.port)) as sock:
            _, headers, _ = _get(sock, "/v1/healthz",
                                 extra="Connection: close\r\n")
            assert headers["connection"] == "close"
            assert _closed(sock)


class TestClientReuse:
    def test_single_connection_for_many_requests(self, tmp_path,
                                                 scoped_metrics):
        config = ServiceConfig(state_dir=str(tmp_path), workers=1,
                               keepalive_max_requests=100)
        with ServiceThread(config) as svc:
            with ServiceClient("127.0.0.1", svc.port) as client:
                for _ in range(5):
                    assert client.health()["ok"]
                conn = client._conn
                assert conn is not None
                counters = client.metrics()["counters"]
                # still the same socket object after 6 requests
                assert client._conn is conn
                assert counters["svc.requests"] == 6

    def test_reconnects_past_request_cap(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            # cap is 3: requests 4..8 only succeed if the client
            # transparently reopens the dropped connection
            for _ in range(8):
                assert client.health()["ok"]

    def test_reconnects_after_idle_timeout(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            assert client.health()["ok"]
            time.sleep(0.8)  # > keepalive_idle_s: server drops the socket
            assert client.health()["ok"]


class TestConfigValidation:
    def test_rejects_bad_keepalive_settings(self, tmp_path):
        with pytest.raises(ValueError):
            ServiceConfig(state_dir=str(tmp_path), keepalive_max_requests=0)
        with pytest.raises(ValueError):
            ServiceConfig(state_dir=str(tmp_path), keepalive_idle_s=0.0)
