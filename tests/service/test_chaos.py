"""End-to-end chaos matrix for the service supervision layer.

Every test here runs a real server (thread + event loop + forked job
workers) and injects one failure mode through the deterministic fault
harness: a worker that stalls forever, leaks memory, goes silent under
SIGSTOP, a server asked to drain mid-load, a queue pushed past its
watermark, an orphan left by a crashed server.  The assertions are the
robustness contract: supervised kills route through requeue/poison
exactly like unexplained crashes, survivors produce artifacts
byte-identical to an undisturbed run, and the journal replays the truth
after every insult.

The quick scenarios (walltime reap, poison quarantine, overload
shedding, graceful drain) run in tier-1; the heavier ones (RSS
runaway, SIGSTOP liveness, orphan reaping through a full service
restart) are marked ``slow`` and run in the nightly chaos leg
(``--runslow``).
"""

import asyncio
import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.service.client import (
    JobFailed, QuotaExceeded, ServiceClient, ServiceUnavailable,
)
from repro.service.jobs import JobSpec, JobStore
from repro.service.server import ServiceConfig, ServiceThread
from repro.testing.faults import FaultSpec

pytestmark = pytest.mark.skipif(os.name != "posix",
                                reason="needs POSIX signals + fork")

TINY = {"workload": "fig1", "params": {"n": 24, "m": 24}}


def _client(svc, tenant="default"):
    return ServiceClient("127.0.0.1", svc.port, tenant=tenant)


def _wait_state(client, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = client.status(job_id)
        if job["state"] == state:
            return job
        if job["state"] in ("done", "failed", "cancelled",
                            "failed_poison"):
            raise AssertionError(f"job reached {job['state']} while "
                                 f"waiting for {state}: {job}")
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} never reached {state}")


def _wait_marker(marker, n=1, timeout=30.0):
    """Block until ``n`` fault-budget slots have been claimed.

    Slot files appear atomically when a worker claims a firing, so this
    is the deterministic way to know an injected stall has actually
    started (vs. the worker still importing) before poking it further.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if len(os.listdir(marker)) >= n:
                return
        except OSError:
            pass
        time.sleep(0.02)
    raise TimeoutError(f"fault marker {marker} never reached {n} slots")


def _direct_patterns():
    """The pattern DB bytes an undisturbed in-process run produces."""
    from repro.apps.registry import build_workload, workload_params
    from repro.tools.session import AnalysisSession
    params = dict(workload_params("fig1"))
    params.update(TINY["params"])
    session = AnalysisSession(build_workload("fig1", **params))
    session.run()
    return pickle.dumps(session.analyzer.dump_state(),
                        protocol=pickle.HIGHEST_PROTOCOL)


class TestWalltimeReap:
    def test_stalled_worker_killed_requeued_and_completes(
            self, tmp_path, scoped_metrics, clean_faults):
        """A worker stalled past the walltime ceiling is SIGTERMed,
        the job requeues with backoff, and the retry's artifacts are
        byte-identical to an undisturbed run."""
        clean_faults.install(FaultSpec(
            point="session.run", action="stall", delay=60.0,
            match=(("program", "fig1a"),), times=1,
            marker=str(tmp_path / "marker")))
        config = ServiceConfig(state_dir=str(tmp_path / "state"),
                               workers=1, walltime_s=1.0,
                               heartbeat_s=0.1)
        with ServiceThread(config) as svc:
            client = _client(svc)
            job = client.submit(dict(TINY, artifacts=["patterns"]))
            done = client.wait(job["id"], timeout=60)
            assert done["state"] == "done"
            # exactly one supervised kill, one requeue, then success
            assert done["crashes"] == 1
            counters = client.metrics()["counters"]
            assert counters["svc.stuck_killed"] >= 1
            assert counters["svc.requeued"] == 1
            assert counters.get("svc.poisoned", 0) == 0
            assert counters["svc.heartbeats"] >= 1
            served = client.fetch_artifact(job["id"], "patterns")
        assert served == _direct_patterns()

    def test_requeued_attempt_respects_backoff(self, tmp_path,
                                               scoped_metrics,
                                               clean_faults):
        clean_faults.install(FaultSpec(
            point="session.run", action="stall", delay=60.0,
            match=(("program", "fig1a"),), times=1,
            marker=str(tmp_path / "marker")))
        config = ServiceConfig(state_dir=str(tmp_path / "state"),
                               workers=1, walltime_s=0.75,
                               heartbeat_s=0.1)
        with ServiceThread(config) as svc:
            client = _client(svc)
            t0 = time.monotonic()
            job = client.submit(dict(TINY))
            done = client.wait(job["id"], timeout=60)
            assert done["state"] == "done"
            # walltime (0.75s) + backoff (>= 0.5s) both elapsed before
            # the successful attempt could even start
            assert time.monotonic() - t0 > 1.25


class TestPoisonQuarantine:
    def test_repeatedly_stalling_job_is_quarantined(
            self, tmp_path, scoped_metrics, clean_faults):
        """A spec that kills every worker stops being retried after
        ``poison_threshold`` crashes and parks as ``failed_poison``."""
        clean_faults.install(FaultSpec(
            point="session.run", action="stall", delay=60.0,
            match=(("program", "fig1a"),), times=0))
        config = ServiceConfig(state_dir=str(tmp_path), workers=1,
                               walltime_s=0.75, heartbeat_s=0.1,
                               poison_threshold=2)
        with ServiceThread(config) as svc:
            client = _client(svc)
            job = client.submit(dict(TINY))
            with pytest.raises(JobFailed) as err:
                client.wait(job["id"], timeout=60)
            assert err.value.job["state"] == "failed_poison"
            status = client.status(job["id"])
            assert status["state"] == "failed_poison"
            assert "quarantined" in status["error"]
            counters = client.metrics()["counters"]
            assert counters["svc.poisoned"] == 1
            assert counters["svc.requeued"] == 1
            assert counters["svc.stuck_killed"] == 2
            # a healthy job still runs to completion afterwards: the
            # poison spec is quarantined, not the service
            clean_faults.clear()
            ok = client.submit(dict(TINY))
            assert client.wait(ok["id"], timeout=60)["state"] == "done"

    def test_poison_state_survives_restart(self, tmp_path,
                                           scoped_metrics, clean_faults):
        clean_faults.install(FaultSpec(
            point="session.run", action="stall", delay=60.0,
            match=(("program", "fig1a"),), times=0))
        state_dir = str(tmp_path)
        config = ServiceConfig(state_dir=state_dir, workers=1,
                               walltime_s=0.75, heartbeat_s=0.1,
                               poison_threshold=1)
        with ServiceThread(config) as svc:
            client = _client(svc)
            job_id = client.submit(dict(TINY))["id"]
            with pytest.raises(JobFailed):
                client.wait(job_id, timeout=60)
        clean_faults.clear()

        # the journal replays the quarantine: the job must NOT re-run
        store = JobStore(state_dir)
        assert store.recover() == []
        assert store.jobs[job_id].state == "failed_poison"
        with ServiceThread(ServiceConfig(state_dir=state_dir,
                                         workers=1)) as svc:
            client = _client(svc)
            assert client.status(job_id)["state"] == "failed_poison"


@pytest.mark.slow
class TestRssCeiling:
    def test_leaking_worker_killed_then_retry_completes(
            self, tmp_path, scoped_metrics, clean_faults):
        """A worker whose heartbeat reports RSS over the ceiling is
        killed (``svc.rss_killed``, not ``svc.stuck_killed``) and the
        leak-free retry completes."""
        marker = str(tmp_path / "marker")
        # the leak commits pages (zero-filled), the stall keeps the
        # worker alive long enough for its heartbeat to report them
        clean_faults.install(FaultSpec(
            point="service.worker", action="leak", mb=600.0,
            match=(("workload", "fig1"),), times=1, marker=marker))
        clean_faults.install(FaultSpec(
            point="service.worker", action="stall", delay=60.0,
            match=(("workload", "fig1"),), times=1, marker=marker))
        config = ServiceConfig(state_dir=str(tmp_path / "state"),
                               workers=1, max_rss_mb=400.0,
                               heartbeat_s=0.05, heartbeat_timeout_s=30.0)
        with ServiceThread(config) as svc:
            client = _client(svc)
            job = client.submit(dict(TINY, artifacts=["patterns"]))
            done = client.wait(job["id"], timeout=120)
            assert done["state"] == "done"
            assert done["crashes"] == 1
            counters = client.metrics()["counters"]
            assert counters["svc.rss_killed"] >= 1
            assert counters.get("svc.stuck_killed", 0) == 0
            served = client.fetch_artifact(job["id"], "patterns")
        assert served == _direct_patterns()


@pytest.mark.slow
class TestStaleHeartbeat:
    def test_sigstopped_worker_reaped_via_sigkill_escalation(
            self, tmp_path, scoped_metrics, clean_faults):
        """A worker frozen by SIGSTOP stops heartbeating; SIGTERM
        cannot unwind a stopped process, so the supervisor's SIGKILL
        escalation is what actually clears it."""
        marker = str(tmp_path / "marker")
        clean_faults.install(FaultSpec(
            point="session.run", action="stall", delay=120.0,
            match=(("program", "fig1a"),), times=1, marker=marker))
        config = ServiceConfig(state_dir=str(tmp_path / "state"),
                               workers=1, heartbeat_s=0.05,
                               heartbeat_timeout_s=2.0, kill_grace_s=0.5)
        with ServiceThread(config) as svc:
            client = _client(svc)
            job = client.submit(dict(TINY))
            _wait_state(client, job["id"], "running")
            # freeze the worker only once it owns the stall budget —
            # SIGSTOPping it mid-import would let the retry claim the
            # stall and sleep 120s with fresh heartbeats
            _wait_marker(marker)
            store = svc.service.store
            deadline = time.monotonic() + 10
            pid = None
            while time.monotonic() < deadline:
                pid = store.read_status(job["id"]).get("pid")
                if pid:
                    break
                time.sleep(0.02)
            assert pid, "worker never wrote status.json"
            os.kill(pid, signal.SIGSTOP)
            try:
                done = client.wait(job["id"], timeout=60)
            finally:
                # belt and braces: never leak a stopped process
                try:
                    os.kill(pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            assert done["state"] == "done"
            assert done["crashes"] == 1
            counters = client.metrics()["counters"]
            assert counters["svc.stuck_killed"] >= 1


class TestOverloadShedding:
    def test_full_queue_sheds_503_not_429(self, tmp_path, scoped_metrics,
                                          clean_faults):
        """Past the global queue watermark submissions shed with 503 +
        Retry-After — a different contract from the per-tenant 429 —
        while already-admitted jobs complete byte-identically."""
        marker = str(tmp_path / "marker")
        clean_faults.install(FaultSpec(
            point="session.run", action="stall", delay=60.0,
            match=(("program", "fig1a"),), times=1, marker=marker))
        config = ServiceConfig(state_dir=str(tmp_path / "state"),
                               workers=1, queue_max=2,
                               shed_retry_after_s=7.0)
        with ServiceThread(config) as svc:
            client = _client(svc)
            blocker = client.submit(dict(TINY))
            _wait_state(client, blocker["id"], "running")
            # the blocker must own the single stall slot before anything
            # else happens, or a queued job could claim it later and
            # stall with nobody left to cancel it
            _wait_marker(marker)
            queued = [client.submit(dict(TINY, artifacts=["patterns"]))
                      for _ in range(2)]
            assert all(j["state"] == "queued" for j in queued)
            with pytest.raises(ServiceUnavailable) as err:
                client.submit(dict(TINY))
            assert err.value.status == 503
            assert err.value.retry_after == 7.0
            assert "queue is full" in err.value.message
            assert not isinstance(err.value, QuotaExceeded)
            counters = client.metrics()["counters"]
            assert counters["svc.shed"] >= 1
            assert counters.get("svc.rejected", 0) == 0
            # clear the stalled blocker; the admitted jobs drain and
            # produce identical content-addressed artifacts
            client.cancel(blocker["id"])
            digests = []
            for j in queued:
                done = client.wait(j["id"], timeout=60)
                assert done["state"] == "done"
                digests.append(next(
                    a["digest"] for a in client.artifacts(j["id"])
                    if a["name"] == "patterns"))
            assert digests[0] == digests[1]
            served = client.fetch_artifact(queued[0]["id"], "patterns")
        assert served == _direct_patterns()

    def test_shed_clears_when_queue_drains(self, tmp_path, scoped_metrics):
        config = ServiceConfig(state_dir=str(tmp_path), workers=2,
                               queue_max=1)
        with ServiceThread(config) as svc:
            client = _client(svc)
            job = client.submit(dict(TINY))
            assert client.wait(job["id"], timeout=60)["state"] == "done"
            # queue is empty again: the next submission is admitted
            job2 = client.submit(dict(TINY))
            assert client.wait(job2["id"], timeout=60)["state"] == "done"


class TestGracefulDrain:
    def test_drain_finishes_running_journal_keeps_queued(
            self, tmp_path, scoped_metrics, clean_faults):
        """During drain the server answers polls but sheds submits and
        degrades healthz; the running job finishes inside the drain
        window and queued jobs survive in the journal for the next
        server."""
        clean_faults.install(FaultSpec(
            point="session.run", action="stall", delay=2.0,
            match=(("program", "fig1a"),), times=1,
            marker=str(tmp_path / "marker")))
        state_dir = str(tmp_path / "state")
        config = ServiceConfig(state_dir=state_dir, workers=1,
                               drain_timeout_s=30.0)
        with ServiceThread(config) as svc:
            client = _client(svc)
            running = client.submit(dict(TINY, artifacts=["patterns"]))
            _wait_state(client, running["id"], "running")
            queued = client.submit(dict(TINY, artifacts=["patterns"]))
            assert client.health()["ok"]

            stop = asyncio.run_coroutine_threadsafe(
                svc.service.stop(), svc._loop)
            # healthz degrades to 503 (tolerated by the client) with a
            # draining payload, so load balancers stop routing here
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                health = client.health()
                if health.get("draining"):
                    break
                time.sleep(0.02)
            assert health["draining"] and not health["ok"]
            # new work bounces while polls keep working
            with pytest.raises(ServiceUnavailable) as err:
                client.submit(dict(TINY))
            assert "draining" in err.value.message
            assert client.status(running["id"])["state"] in (
                "running", "done")
            stop.result(timeout=60)

            # the running job finished inside the window; the queued
            # one was never started and stays journaled as queued
            assert svc.service.store.jobs[running["id"]].state == "done"
            assert svc.service.store.jobs[queued["id"]].state == "queued"
        clean_faults.clear()

        store = JobStore(state_dir)
        store.recover()
        assert store.jobs[queued["id"]].state == "queued"
        with ServiceThread(ServiceConfig(state_dir=state_dir,
                                         workers=1)) as svc:
            client = _client(svc)
            done = client.wait(queued["id"], timeout=60)
            assert done["state"] == "done"
            # queued (not interrupted): this was its first attempt
            assert done["resumed"] == 0
            a1 = {a["name"]: a["digest"]
                  for a in client.artifacts(running["id"])}
            a2 = {a["name"]: a["digest"]
                  for a in client.artifacts(queued["id"])}
            # drained and post-restart runs content-address identically
            assert a1["patterns"] == a2["patterns"]


def _orphan_worker_main(job_dir):
    """Stand-in for a worker that outlived a SIGKILLed server."""
    from repro.service.supervise import write_worker_identity
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    write_worker_identity(job_dir)
    time.sleep(120)


@pytest.mark.slow
class TestOrphanReaping:
    def test_restarted_server_reaps_orphan_then_reruns_job(
            self, tmp_path, scoped_metrics):
        """A journal that says "running" plus a live worker identity is
        the crashed-server signature: the replacement server must kill
        the orphan before re-launching, and end with exactly one copy
        of each artifact."""
        state_dir = str(tmp_path)
        store = JobStore(state_dir)
        job = store.submit("default", JobSpec(
            workload="fig1", params={"n": 24, "m": 24},
            artifacts=["patterns", "manifest"]))
        store.mark_started(job.id)
        ctx = multiprocessing.get_context("fork")
        orphan = ctx.Process(target=_orphan_worker_main,
                             args=(store.job_dir(job.id),), daemon=True)
        orphan.start()
        from repro.service.supervise import read_worker_identity
        deadline = time.monotonic() + 10
        while (read_worker_identity(store.job_dir(job.id)) is None
               and time.monotonic() < deadline):
            time.sleep(0.02)

        with ServiceThread(ServiceConfig(state_dir=state_dir,
                                         workers=1,
                                         kill_grace_s=2.0)) as svc:
            client = _client(svc)
            done = client.wait(job.id, timeout=120)
            assert done["state"] == "done"
            assert done["resumed"] >= 1
            counters = client.metrics()["counters"]
            assert counters["svc.orphans_reaped"] == 1
            artifacts = client.artifacts(job.id)
            # exactly one blob per digest on disk, no duplicates
            for art in artifacts:
                blob = os.path.join(state_dir, "cache", "blobs",
                                    art["digest"][:2],
                                    art["digest"] + ".bin")
                assert os.path.exists(blob)
                assert os.path.getsize(blob) == art["bytes"]
            served = client.fetch_artifact(job.id, "patterns")
        orphan.join(timeout=10)
        assert orphan.exitcode == -signal.SIGTERM
        assert served == _direct_patterns()
