"""End-to-end service tests over a live in-process server.

Each test runs a real :class:`AnalysisService` (own thread, own event
loop, real sockets, real ``multiprocessing`` job workers) and talks to
it through the bundled blocking :class:`ServiceClient` — the same path
the CI smoke job exercises.
"""

import pickle
import time

import pytest

from repro.service.client import QuotaExceeded, ServiceClient
from repro.service.quota import TenantQuota
from repro.service.server import ServiceConfig, ServiceThread
from repro.testing.faults import FaultSpec

TINY = {"workload": "fig1", "params": {"n": 24, "m": 24}}


def _client(svc, tenant="default"):
    return ServiceClient("127.0.0.1", svc.port, tenant=tenant)


def _wait_state(client, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = client.status(job_id)
        if job["state"] == state:
            return job
        if job["state"] in ("done", "failed", "cancelled"):
            raise AssertionError(f"job reached {job['state']} while "
                                 f"waiting for {state}: {job}")
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} never reached {state}")


class TestLifecycle:
    def test_submit_poll_fetch(self, tmp_path, scoped_metrics):
        config = ServiceConfig(state_dir=str(tmp_path), workers=2)
        with ServiceThread(config) as svc:
            client = _client(svc)
            assert client.health()["ok"]
            job = client.submit(dict(
                TINY, artifacts=["patterns", "manifest", "xml", "report"]))
            assert job["state"] == "queued"
            done = client.wait(job["id"], timeout=60)
            assert done["state"] == "done"
            assert done["totals"]["L2"] > 0
            names = {a["name"] for a in client.artifacts(job["id"])}
            assert names == {"patterns", "manifest", "xml", "report"}
            for art in client.artifacts(job["id"]):
                data = client.fetch_artifact(job["id"], art["name"])
                assert len(data) == art["bytes"]
            manifest = client.fetch_artifact(job["id"], "manifest")
            assert b'"program"' in manifest
            report = client.fetch_artifact(job["id"], "report")
            assert report.startswith(b"<!DOCTYPE html>")
            counters = client.metrics()["counters"]
            assert counters["svc.submitted"] == 1
            assert counters["svc.completed"] == 1

    def test_artifact_bytes_identical_to_direct_run(self, tmp_path,
                                                    scoped_metrics):
        config = ServiceConfig(state_dir=str(tmp_path))
        spec = {"workload": "sweep3d", "params": {"mesh": 6},
                "artifacts": ["patterns", "xml"]}
        with ServiceThread(config) as svc:
            client = _client(svc)
            job = client.submit(dict(spec))
            client.wait(job["id"], timeout=120)
            served_patterns = client.fetch_artifact(job["id"], "patterns")
            served_xml = client.fetch_artifact(job["id"], "xml")

        from repro.apps.registry import build_workload, workload_params
        from repro.tools.session import AnalysisSession
        params = dict(workload_params("sweep3d"))
        params["mesh"] = 6
        session = AnalysisSession(build_workload("sweep3d", **params))
        session.run()
        direct_patterns = pickle.dumps(session.analyzer.dump_state(),
                                       protocol=pickle.HIGHEST_PROTOCOL)
        assert served_patterns == direct_patterns
        assert served_xml.decode() == session.export_xml(None)

    def test_repeat_submission_dedups_artifacts(self, tmp_path,
                                                scoped_metrics):
        config = ServiceConfig(state_dir=str(tmp_path))
        with ServiceThread(config) as svc:
            client = _client(svc)
            first = client.submit(dict(TINY))
            client.wait(first["id"], timeout=60)
            second = client.submit(dict(TINY))
            client.wait(second["id"], timeout=60)
            a1 = {a["name"]: a["digest"]
                  for a in client.artifacts(first["id"])}
            a2 = {a["name"]: a["digest"]
                  for a in client.artifacts(second["id"])}
            # identical analysis -> identical content address for the
            # deterministic artifact, and the second publish was a
            # dedup, not a second copy
            assert a1["patterns"] == a2["patterns"]
            # the manifest is a run record (timestamps, from_cache,
            # phase timings), so its digest legitimately differs
            assert a1["manifest"] != a2["manifest"]
            counters = client.metrics()["counters"]
            assert counters["svc.artifacts_deduped"] >= 1

    def test_failed_job_reports_error(self, tmp_path, scoped_metrics):
        config = ServiceConfig(state_dir=str(tmp_path))
        with ServiceThread(config) as svc:
            client = _client(svc)
            # an engine mismatch deep in the run: sharded jobs fall
            # back, but a plain fenwick failure surfaces as failed.
            # Simplest deterministic failure: unknown param slips past
            # nothing, so use a fault-free path — submit a job whose
            # params make the workload builder raise (kb must divide n)
            job = client.submit({"workload": "sweep3d",
                                 "params": {"mesh": 9, "kb": 2}})
            with pytest.raises(Exception) as err:
                client.wait(job["id"], timeout=60)
            assert "failed" in str(err.value)
            status = client.status(job["id"])
            assert status["state"] == "failed"
            assert status["error"]
            counters = client.metrics()["counters"]
            assert counters["svc.failed"] == 1

    def test_unknown_routes_and_jobs(self, tmp_path, scoped_metrics):
        from repro.service.client import ServiceError
        config = ServiceConfig(state_dir=str(tmp_path))
        with ServiceThread(config) as svc:
            client = _client(svc)
            with pytest.raises(ServiceError) as err:
                client.status("nothere")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client._request("GET", "/v2/jobs")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client._request("POST", "/v1/jobs",
                                body=None, raw=False)  # no body
            assert err.value.status == 400

    def test_bad_spec_is_400(self, tmp_path, scoped_metrics):
        from repro.service.client import ServiceError
        config = ServiceConfig(state_dir=str(tmp_path))
        with ServiceThread(config) as svc:
            client = _client(svc)
            with pytest.raises(ServiceError) as err:
                client.submit({"workload": "not-a-workload"})
            assert err.value.status == 400
            assert "unknown workload" in err.value.message


class TestQuota:
    def test_queue_quota_429_other_tenants_unaffected(
            self, tmp_path, scoped_metrics, clean_faults):
        clean_faults.install(FaultSpec(
            point="session.run", action="stall", delay=60.0,
            match=(("program", "fig1a"),), times=0))
        config = ServiceConfig(
            state_dir=str(tmp_path), workers=1,
            default_quota=TenantQuota(max_concurrent=1, max_queued=1),
            retry_after_s=3.0)
        with ServiceThread(config) as svc:
            client = _client(svc, tenant="busy")
            running = client.submit(dict(TINY))
            _wait_state(client, running["id"], "running")
            queued = client.submit(dict(TINY))
            assert queued["state"] == "queued"
            with pytest.raises(QuotaExceeded) as err:
                client.submit(dict(TINY))
            assert err.value.retry_after == 3.0
            assert "busy" in err.value.message
            # an unrelated tenant still gets in
            other = ServiceClient("127.0.0.1", svc.port, tenant="idle")
            accepted = other.submit(dict(TINY))
            assert accepted["state"] == "queued"
            counters = client.metrics()["counters"]
            assert counters["svc.rejected"] == 1
            # unblock shutdown: cancel everything
            client.cancel(queued["id"])
            client.cancel(running["id"])
            other.cancel(accepted["id"])

    def test_oversize_body_429(self, tmp_path, scoped_metrics):
        config = ServiceConfig(state_dir=str(tmp_path),
                               max_request_bytes=512, retry_after_s=1.0)
        with ServiceThread(config) as svc:
            client = _client(svc)
            with pytest.raises(QuotaExceeded) as err:
                client.submit(dict(TINY, params={"n": 24, "m": 24},
                                   padding="x" * 2048))
            assert err.value.retry_after == 1.0

    def test_concurrency_cap_queues_not_rejects(self, tmp_path,
                                                scoped_metrics):
        config = ServiceConfig(
            state_dir=str(tmp_path), workers=4,
            default_quota=TenantQuota(max_concurrent=1, max_queued=16))
        with ServiceThread(config) as svc:
            client = _client(svc)
            ids = [client.submit(dict(TINY))["id"] for _ in range(3)]
            for job_id in ids:
                done = client.wait(job_id, timeout=120)
                assert done["state"] == "done"


class TestCancel:
    def test_cancel_queued_job(self, tmp_path, scoped_metrics,
                               clean_faults):
        clean_faults.install(FaultSpec(
            point="session.run", action="stall", delay=60.0, times=0))
        config = ServiceConfig(state_dir=str(tmp_path), workers=1)
        with ServiceThread(config) as svc:
            client = _client(svc)
            running = client.submit(dict(TINY))
            _wait_state(client, running["id"], "running")
            queued = client.submit(dict(TINY))
            out = client.cancel(queued["id"])
            assert out["state"] == "cancelled"
            assert client.status(queued["id"])["state"] == "cancelled"
            client.cancel(running["id"])

    def test_cancel_running_job_mid_run(self, tmp_path, scoped_metrics,
                                        clean_faults):
        clean_faults.install(FaultSpec(
            point="session.run", action="stall", delay=120.0, times=0))
        config = ServiceConfig(state_dir=str(tmp_path), workers=1)
        with ServiceThread(config) as svc:
            client = _client(svc)
            job = client.submit(dict(TINY))
            _wait_state(client, job["id"], "running")
            t0 = time.monotonic()
            out = client.cancel(job["id"])
            assert out["state"] == "cancelling"
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                state = client.status(job["id"])["state"]
                if state == "cancelled":
                    break
                time.sleep(0.05)
            assert state == "cancelled"
            # the 120s stall was interrupted, not waited out
            assert time.monotonic() - t0 < 30
            counters = client.metrics()["counters"]
            assert counters["svc.cancelled"] == 1

    def test_cancel_terminal_job_conflicts(self, tmp_path,
                                           scoped_metrics):
        from repro.service.client import ServiceError
        config = ServiceConfig(state_dir=str(tmp_path))
        with ServiceThread(config) as svc:
            client = _client(svc)
            job = client.submit(dict(TINY))
            client.wait(job["id"], timeout=60)
            with pytest.raises(ServiceError) as err:
                client.cancel(job["id"])
            assert err.value.status == 409


class TestRestartResume:
    def test_restart_resumes_queued_and_interrupted_jobs(
            self, tmp_path, scoped_metrics, clean_faults):
        state_dir = str(tmp_path)
        clean_faults.install(FaultSpec(
            point="session.run", action="stall", delay=120.0, times=0))
        config = ServiceConfig(state_dir=state_dir, workers=1)
        with ServiceThread(config) as svc:
            client = _client(svc)
            interrupted = client.submit(dict(TINY))["id"]
            _wait_state(client, interrupted, "running")
            queued = client.submit(dict(TINY))["id"]
            # graceful stop on exit: SIGTERMs the running worker and
            # journals no terminal event for either job
        clean_faults.clear()

        with ServiceThread(ServiceConfig(state_dir=state_dir,
                                         workers=1)) as svc:
            client = _client(svc)
            for job_id in (interrupted, queued):
                done = client.wait(job_id, timeout=120)
                assert done["state"] == "done"
            assert client.status(interrupted)["resumed"] >= 1
            assert client.status(queued)["resumed"] == 0
            counters = client.metrics()["counters"]
            assert counters["svc.resumed"] >= 1

    def test_service_json_discovery(self, tmp_path, scoped_metrics):
        config = ServiceConfig(state_dir=str(tmp_path))
        with ServiceThread(config) as svc:
            client = ServiceClient.from_state_dir(str(tmp_path))
            assert client.port == svc.port
            assert client.health()["ok"]
