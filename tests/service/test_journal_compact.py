"""Job-journal compaction: bounded growth, replay-identical recovery.

The journal is append-only, so restart churn (every ``recover`` appends
a fresh ``start`` line per requeued job) and ordinary job turnover both
grow it without bound.  Compaction rewrites it to the minimal
replay-equivalent form — submit + one counted start line for live jobs,
submit + final event for terminal ones — atomically, and triggers
automatically once dead lines outnumber live ones.
"""

import json
import os
import threading

from repro.service.jobs import JobSpec, JobStore


def _spec():
    return JobSpec.from_dict({"workload": "fig1"})


def _journal_lines(state_dir):
    path = os.path.join(state_dir, JobStore.JOURNAL)
    with open(path, encoding="utf-8") as fh:
        return fh.read().splitlines()


def _snapshot(store):
    """Everything recovery reconstructs, as comparable plain data."""
    return {
        job_id: (job.state, job.tenant, job.resumed, job.totals,
                 job.artifacts, job.error)
        for job_id, job in store.jobs.items()
    }


class TestCompaction:
    def test_recovery_identical_after_compact(self, tmp_path):
        store = JobStore(str(tmp_path))
        queued = store.submit("t", _spec())
        running = store.submit("t", _spec())
        done = store.submit("t", _spec())
        failed = store.submit("t", _spec())
        cancelled = store.submit("t", _spec())
        store.mark_started(running.id)
        for job in (done, failed):
            store.mark_started(job.id)
        store.mark_done(done.id, {"L2": 2.0},
                        [{"name": "patterns", "digest": "d", "bytes": 3}])
        store.mark_failed(failed.id, "boom")
        store.mark_cancelled(cancelled.id)

        before = JobStore(str(tmp_path))
        requeued_before = {j.id for j in before.recover()}

        dropped = store.compact()
        assert dropped > 0

        after = JobStore(str(tmp_path))
        requeued_after = {j.id for j in after.recover()}
        assert requeued_after == requeued_before == {queued.id, running.id}
        assert _snapshot(after) == _snapshot(before)

    def test_terminal_jobs_fold_to_two_lines(self, tmp_path):
        store = JobStore(str(tmp_path))
        for _ in range(4):
            job = store.submit("t", _spec())
            store.mark_started(job.id)
            store.mark_done(job.id, {"L2": 1.0}, [])
        store.compact()
        lines = _journal_lines(str(tmp_path))
        # header + (submit + done) per job: start lines are redundant
        # once the job is terminal
        assert len(lines) == 1 + 2 * 4
        events = [json.loads(line)["event"] for line in lines[1:]]
        assert events == ["submit", "done"] * 4

    def test_restart_churn_folds_starts_and_keeps_counters(self, tmp_path):
        store = JobStore(str(tmp_path))
        ids = [store.submit("t", _spec()).id for _ in range(4)]
        for job_id in ids:
            store.mark_started(job_id)
        for _ in range(8):
            fresh = JobStore(str(tmp_path))
            for job in fresh.recover():
                fresh.mark_started(job.id)
        fresh.compact()
        lines = _journal_lines(str(tmp_path))
        # header + (submit + one merged start) per job
        assert len(lines) == 1 + 2 * 4

        recovered = JobStore(str(tmp_path))
        recovered.recover()
        assert [recovered.jobs[i].resumed for i in ids] == [9, 9, 9, 9]

    def test_compact_is_idempotent(self, tmp_path):
        store = JobStore(str(tmp_path))
        for _ in range(3):
            job = store.submit("t", _spec())
            store.mark_started(job.id)
            store.mark_done(job.id, {}, [])
        assert store.compact() >= 0
        content = open(os.path.join(str(tmp_path),
                                    JobStore.JOURNAL)).read()
        assert store.compact() == 0
        assert open(os.path.join(str(tmp_path),
                                 JobStore.JOURNAL)).read() == content

    def test_auto_compaction_bounds_growth(self, tmp_path):
        store = JobStore(str(tmp_path))
        for _ in range(40):
            job = store.submit("t", _spec())
            store.mark_started(job.id)
            store.mark_done(job.id, {}, [])
        lines = _journal_lines(str(tmp_path))
        # every terminal job compacts to 2 lines; auto-compaction fires
        # whenever the journal exceeds twice that, so it never holds
        # more than ~2x the live set (plus the lines appended since the
        # last rewrite)
        assert len(lines) <= 1 + 2 * 2 * 40

        recovered = JobStore(str(tmp_path))
        recovered.recover()
        assert len(recovered.jobs) == 40
        assert all(j.state == "done" for j in recovered.jobs.values())

    def test_no_auto_compaction_on_linear_journal(self, tmp_path):
        """A journal already in minimal form must not be rewritten on
        every append (that would be quadratic in job count)."""
        store = JobStore(str(tmp_path))
        for _ in range(10):
            store.submit("t", _spec())
        lines = _journal_lines(str(tmp_path))
        assert len(lines) == 1 + 10
        assert [json.loads(l)["event"] for l in lines[1:]] == ["submit"] * 10


class TestRequeuePoisonFolding:
    def test_crash_counter_survives_compaction(self, tmp_path):
        """Requeue lines carry the cumulative crash count, so folding
        the start/requeue churn away must not reset the poison clock."""
        store = JobStore(str(tmp_path))
        job = store.submit("t", _spec())
        for _ in range(2):
            store.mark_started(job.id)
            store.mark_requeued(job.id, "killed by signal 9")
        assert store.compact() > 0

        fresh = JobStore(str(tmp_path))
        requeued = fresh.recover()
        assert [j.id for j in requeued] == [job.id]
        assert fresh.jobs[job.id].state == "queued"
        assert fresh.jobs[job.id].crashes == 2
        assert fresh.jobs[job.id].error == "killed by signal 9"

    def test_requeue_last_event_order_is_preserved(self, tmp_path):
        """A job whose last event is ``requeue`` must fold so that the
        replay still ends on the requeue — folding it to end on
        ``start`` would recover the job as an interrupted run and bump
        ``resumed`` for a crash that was already accounted."""
        store = JobStore(str(tmp_path))
        job = store.submit("t", _spec())
        store.mark_started(job.id)
        store.mark_requeued(job.id, "exited with code 70")
        store.compact()
        events = [json.loads(line) for line in
                  _journal_lines(str(tmp_path))[1:]]
        kinds = [ev["event"] for ev in events if ev.get("job") == job.id]
        assert kinds[-1] == "requeue"

        fresh = JobStore(str(tmp_path))
        fresh.recover()
        assert fresh.jobs[job.id].state == "queued"
        assert fresh.jobs[job.id].crashes == 1

    def test_poisoned_job_folds_to_submit_plus_poison(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.submit("t", _spec())
        for _ in range(2):
            store.mark_started(job.id)
            store.mark_requeued(job.id, "killed by signal 11")
        store.mark_started(job.id)
        store.mark_poisoned(job.id, "quarantined after 3 crashes")
        store.compact()
        lines = _journal_lines(str(tmp_path))
        assert len(lines) == 1 + 2  # header + submit + poison
        assert [json.loads(l)["event"] for l in lines[1:]] == \
            ["submit", "poison"]

        fresh = JobStore(str(tmp_path))
        assert fresh.recover() == []  # quarantined: never re-queued
        assert fresh.jobs[job.id].state == "failed_poison"
        assert fresh.jobs[job.id].error == "quarantined after 3 crashes"
        assert fresh.jobs[job.id].finished > 0


class TestConcurrency:
    """Regression tests: compaction's read-fold-replace and recover's
    replay both hold the journal lock, so neither can run against a
    half-swapped file or drop a concurrent append under os.replace."""

    def test_compact_does_not_lose_concurrent_appends(self, tmp_path):
        writer = JobStore(str(tmp_path))
        compactor = JobStore(str(tmp_path))
        stop = threading.Event()
        errors = []

        def churn():
            try:
                while not stop.is_set():
                    compactor.compact()
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        thread = threading.Thread(target=churn)
        thread.start()
        ids = []
        try:
            for i in range(30):
                job = writer.submit("t", _spec())
                ids.append(job.id)
                if i % 2:  # terminal churn gives compaction dead lines
                    writer.mark_started(job.id)
                    writer.mark_done(job.id, {}, [])
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors

        fresh = JobStore(str(tmp_path))
        fresh.recover()
        assert set(fresh.jobs) == set(ids)

    def test_recover_replays_consistently_during_compaction(self,
                                                            tmp_path):
        seeder = JobStore(str(tmp_path))
        ids = []
        for _ in range(10):
            job = seeder.submit("t", _spec())
            seeder.mark_started(job.id)
            seeder.mark_done(job.id, {}, [])
            ids.append(job.id)
        stop = threading.Event()
        errors = []

        def grow_and_shrink():
            store = JobStore(str(tmp_path))
            try:
                while not stop.is_set():
                    job = store.submit("t", _spec())
                    store.mark_started(job.id)
                    store.mark_done(job.id, {}, [])
                    store.compact()
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        thread = threading.Thread(target=grow_and_shrink)
        thread.start()
        try:
            for _ in range(20):
                fresh = JobStore(str(tmp_path))
                fresh.recover()
                # the seeded jobs are always there, always terminal —
                # a torn replay would miss some or see them mid-fold
                assert set(ids) <= set(fresh.jobs)
                assert all(fresh.jobs[i].state == "done" for i in ids)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors
