"""ServiceClient connection-failure semantics against a scripted server.

The client's contract (see its docstring): a GET that dies on a broken
socket is reconnected and retried exactly once — GETs are reads and
safe to repeat; a POST is **never** retried, because a submit whose
response was lost may already be journaled server-side and a blind
resubmit would enqueue the job twice.  A real ``AnalysisService`` can't
exercise this deterministically, so these tests run the client against
a raw-socket server scripted to serve, truncate, or reset on cue —
and, crucially, to *count* what actually arrived.
"""

import http.client
import socket
import struct
import threading

import pytest

from repro.service.client import ServiceClient


class ScriptedServer:
    """One scripted behavior per accepted connection, in order.

    ``"ok"``        full 200 JSON response, then close.
    ``"partial"``   headers claiming 100 body bytes, 2 sent, then close
                    (the client's ``read()`` dies mid-response).
    ``"reset"``     read the request, then RST the socket (SO_LINGER 0).

    Behaviors past the end of the script serve ``"ok"``.  Every request
    that *reaches* the server is recorded in ``requests`` — the
    never-retry-POST assertion is about this list, not about what the
    client observed.
    """

    def __init__(self, behaviors):
        self.behaviors = list(behaviors)
        self.requests = []
        self._sock = socket.create_server(("127.0.0.1", 0))
        self._sock.settimeout(0.2)
        self.port = self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def close(self):
        self._stop.set()
        self._thread.join(timeout=5)
        self._sock.close()

    def _run(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                with conn:
                    self._handle(conn)
            except OSError:
                pass

    def _handle(self, conn):
        conn.settimeout(5.0)
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return
            data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        method, path, _ = lines[0].split(" ", 2)
        length = 0
        for line in lines[1:]:
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1])
        while len(body) < length:
            chunk = conn.recv(65536)
            if not chunk:
                break
            body += chunk
        behavior = self.behaviors.pop(0) if self.behaviors else "ok"
        self.requests.append((method, path))
        if behavior == "ok":
            payload = b'{"ok": true}'
            conn.sendall(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: application/json\r\n"
                         b"Content-Length: %d\r\n"
                         b"Connection: close\r\n\r\n%s"
                         % (len(payload), payload))
        elif behavior == "partial":
            conn.sendall(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Length: 100\r\n\r\n{}")
        elif behavior == "reset":
            conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
        else:  # pragma: no cover - script typo
            raise AssertionError(f"unknown behavior {behavior!r}")


def _client(server):
    return ServiceClient("127.0.0.1", server.port, timeout=5.0)


class TestGetRetry:
    def test_get_retries_once_after_truncated_response(self):
        with ScriptedServer(["partial", "ok"]) as server:
            with _client(server) as client:
                assert client._request("GET", "/v1/metrics") == \
                    {"ok": True}
            assert server.requests == [("GET", "/v1/metrics")] * 2

    def test_get_retries_once_after_connection_reset(self):
        with ScriptedServer(["reset", "ok"]) as server:
            with _client(server) as client:
                assert client._request("GET", "/v1/metrics") == \
                    {"ok": True}
            assert server.requests == [("GET", "/v1/metrics")] * 2

    def test_get_fails_after_second_broken_response(self):
        """Exactly one retry: two broken sockets in a row surface the
        error instead of looping."""
        with ScriptedServer(["partial", "partial", "ok"]) as server:
            with _client(server) as client:
                with pytest.raises((http.client.HTTPException, OSError)):
                    client._request("GET", "/v1/metrics")
            assert server.requests == [("GET", "/v1/metrics")] * 2


class TestPostNeverRetries:
    def test_submit_not_resent_after_truncated_response(self):
        """The lost-response submit: the server got (and may have
        journaled) the job, so the client must surface the error after
        ONE delivery, never silently double-submit."""
        with ScriptedServer(["partial", "ok"]) as server:
            with _client(server) as client:
                with pytest.raises((http.client.HTTPException, OSError)):
                    client.submit({"workload": "fig1"})
            posts = [r for r in server.requests if r[0] == "POST"]
            assert posts == [("POST", "/v1/jobs")]

    def test_post_not_resent_after_reset(self):
        with ScriptedServer(["reset"]) as server:
            with _client(server) as client:
                with pytest.raises((http.client.HTTPException, OSError)):
                    client.cancel("deadbeef")
            assert len(server.requests) == 1

    def test_post_still_works_on_healthy_socket(self):
        with ScriptedServer(["ok"]) as server:
            with _client(server) as client:
                assert client._request("POST", "/v1/jobs",
                                       body={"workload": "fig1"}) == \
                    {"ok": True}
            assert server.requests == [("POST", "/v1/jobs")]
