"""Unit tests for the supervision layer (:mod:`repro.service.supervise`).

The chaos matrix in ``test_chaos.py`` exercises the same machinery
end-to-end through a live server; these tests pin the pieces in
isolation — probes, kill decisions, escalation, backoff, and orphan
identity checks — with stub processes where a real fork would only add
noise.
"""

import json
import multiprocessing
import os
import signal
import sys
import time

import pytest

from repro.obs import metrics
from repro.service.jobs import JobSpec, JobStore
from repro.service.supervise import (
    SupervisionPolicy, Supervisor, pid_alive, proc_start_ticks,
    read_worker_identity, reap_orphans, rss_mb, write_worker_identity,
)

pytestmark = pytest.mark.skipif(sys.platform == "win32",
                                reason="POSIX process control")

TINY_SPEC = JobSpec(workload="fig1", params={"n": 24, "m": 24})


class StubProc:
    """A fake multiprocessing.Process for kill-decision tests."""

    def __init__(self, pid=4242):
        self.pid = pid
        self.terminated = 0
        self.killed = 0

    def is_alive(self):
        return True

    def terminate(self):
        self.terminated += 1

    def kill(self):
        self.killed += 1


def _store_with_running_job(tmp_path, started=None):
    store = JobStore(str(tmp_path))
    job = store.submit("default", TINY_SPEC)
    store.mark_started(job.id)
    if started is not None:
        job.started = started
    return store, job


def _write_status(store, job_id, **fields):
    fields.setdefault("ts", time.time())
    with open(store.status_path(job_id), "w", encoding="utf-8") as fh:
        json.dump(fields, fh)


class TestProbes:
    def test_rss_mb_is_positive_and_plausible(self):
        rss = rss_mb()
        assert 1.0 < rss < 1024 * 64  # between 1 MiB and 64 GiB

    def test_rss_mb_grows_with_allocation(self):
        before = rss_mb()
        ballast = bytearray(64 * 1024 * 1024)
        after = rss_mb()
        del ballast
        assert after - before > 32  # zero-filled pages are committed

    def test_proc_start_ticks_stable_for_self(self):
        first = proc_start_ticks(os.getpid())
        second = proc_start_ticks(os.getpid())
        assert first is not None and first == second

    def test_proc_start_ticks_none_for_dead_pid(self):
        # find a pid that does not exist
        pid = 4_000_000
        while pid_alive(pid):  # pragma: no cover - absurdly full table
            pid += 1
        assert proc_start_ticks(pid) is None

    def test_pid_alive(self):
        assert pid_alive(os.getpid())
        assert not pid_alive(-1)

    def test_worker_identity_roundtrip(self, tmp_path):
        write_worker_identity(str(tmp_path))
        ident = read_worker_identity(str(tmp_path))
        assert ident["pid"] == os.getpid()
        assert ident["start_ticks"] == proc_start_ticks(os.getpid())


class TestKillDecisions:
    def test_walltime_kill(self, tmp_path, scoped_metrics):
        metrics.set_enabled(True)
        store, job = _store_with_running_job(
            tmp_path, started=time.time() - 10.0)
        sup = Supervisor(store, SupervisionPolicy(walltime_s=5.0))
        proc = StubProc()
        killed = sup.check({job.id: proc})
        assert killed == [job.id]
        assert proc.terminated == 1 and proc.killed == 0
        record = sup.take_kill(job.id)
        assert record.reason == "walltime"
        assert metrics.snapshot()["counters"]["svc.stuck_killed"] == 1

    def test_within_walltime_not_killed(self, tmp_path, scoped_metrics):
        store, job = _store_with_running_job(tmp_path)
        sup = Supervisor(store, SupervisionPolicy(walltime_s=60.0))
        proc = StubProc()
        assert sup.check({job.id: proc}) == []
        assert proc.terminated == 0
        assert sup.take_kill(job.id) is None

    def test_rss_kill(self, tmp_path, scoped_metrics):
        metrics.set_enabled(True)
        store, job = _store_with_running_job(tmp_path)
        _write_status(store, job.id, phase="analyze", rss_mb=512.0)
        sup = Supervisor(store, SupervisionPolicy(max_rss_mb=256.0))
        proc = StubProc()
        assert sup.check({job.id: proc}) == [job.id]
        assert sup.take_kill(job.id).reason == "rss"
        assert metrics.snapshot()["counters"]["svc.rss_killed"] == 1

    def test_rss_under_ceiling_not_killed(self, tmp_path, scoped_metrics):
        store, job = _store_with_running_job(tmp_path)
        _write_status(store, job.id, phase="analyze", rss_mb=100.0)
        sup = Supervisor(store, SupervisionPolicy(max_rss_mb=256.0))
        assert sup.check({job.id: StubProc()}) == []

    def test_stale_heartbeat_kill(self, tmp_path, scoped_metrics):
        metrics.set_enabled(True)
        store, job = _store_with_running_job(
            tmp_path, started=time.time() - 10.0)
        _write_status(store, job.id, phase="analyze",
                      ts=time.time() - 8.0)
        sup = Supervisor(store, SupervisionPolicy(heartbeat_timeout_s=5.0))
        assert sup.check({job.id: StubProc()}) == [job.id]
        assert sup.take_kill(job.id).reason == "heartbeat"

    def test_fresh_heartbeat_not_killed_and_counted(self, tmp_path,
                                                    scoped_metrics):
        metrics.set_enabled(True)
        store, job = _store_with_running_job(
            tmp_path, started=time.time() - 10.0)
        _write_status(store, job.id, phase="analyze")
        sup = Supervisor(store, SupervisionPolicy(heartbeat_timeout_s=5.0))
        assert sup.check({job.id: StubProc()}) == []
        assert metrics.snapshot()["counters"]["svc.heartbeats"] == 1
        # same heartbeat seen again: not double-counted
        assert sup.check({job.id: StubProc()}) == []
        assert metrics.snapshot()["counters"]["svc.heartbeats"] == 1

    def test_escalates_to_sigkill_after_grace(self, tmp_path,
                                              scoped_metrics):
        store, job = _store_with_running_job(
            tmp_path, started=time.time() - 10.0)
        sup = Supervisor(store, SupervisionPolicy(walltime_s=1.0,
                                                  kill_grace_s=0.0))
        proc = StubProc()
        sup.check({job.id: proc})
        assert proc.terminated == 1 and proc.killed == 0
        # next tick: grace (0s) has passed and the stub is "still alive"
        sup.check({job.id: proc})
        assert proc.killed == 1
        # escalation happens once
        sup.check({job.id: proc})
        assert proc.killed == 1

    def test_disabled_ceilings_never_kill(self, tmp_path, scoped_metrics):
        store, job = _store_with_running_job(
            tmp_path, started=time.time() - 3600.0)
        _write_status(store, job.id, phase="analyze", rss_mb=1e6,
                      ts=time.time() - 3600.0)
        sup = Supervisor(store, SupervisionPolicy(
            walltime_s=0.0, max_rss_mb=0.0, heartbeat_timeout_s=0.0))
        assert sup.check({job.id: StubProc()}) == []

    def test_inflight_rss_sums_running_jobs(self, tmp_path,
                                            scoped_metrics):
        store, job1 = _store_with_running_job(tmp_path)
        job2 = store.submit("default", TINY_SPEC)
        store.mark_started(job2.id)
        _write_status(store, job1.id, phase="a", rss_mb=100.0)
        _write_status(store, job2.id, phase="a", rss_mb=50.5)
        sup = Supervisor(store, SupervisionPolicy())
        procs = {job1.id: StubProc(), job2.id: StubProc()}
        assert sup.inflight_rss_mb(procs) == pytest.approx(150.5)

    def test_requeue_backoff_grows_and_caps(self, tmp_path):
        store = JobStore(str(tmp_path))
        sup = Supervisor(store, SupervisionPolicy(
            requeue_backoff_s=0.5, requeue_backoff_max_s=4.0))
        delays = [sup.requeue_backoff(n) for n in (1, 2, 3, 4, 10)]
        assert delays[0] == pytest.approx(0.5)
        assert delays[1] == pytest.approx(1.0)
        assert delays[2] == pytest.approx(2.0)
        assert delays[-1] == pytest.approx(4.0)  # capped
        assert all(a <= b for a, b in zip(delays, delays[1:]))


def _orphan_main(job_dir):
    """Pretend to be a worker left behind by a crashed server."""
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    write_worker_identity(job_dir)
    time.sleep(120)


class TestOrphanReaping:
    def test_reaps_live_orphan_with_matching_identity(self, tmp_path,
                                                      scoped_metrics):
        metrics.set_enabled(True)
        store = JobStore(str(tmp_path))
        job = store.submit("default", TINY_SPEC)
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_orphan_main,
                           args=(store.job_dir(job.id),), daemon=True)
        proc.start()
        deadline = time.monotonic() + 10
        while (read_worker_identity(store.job_dir(job.id)) is None
               and time.monotonic() < deadline):
            time.sleep(0.02)
        reaped = reap_orphans(store, [job.id], grace_s=5.0)
        assert reaped == [proc.pid]
        proc.join(timeout=10)
        assert proc.exitcode == -signal.SIGTERM
        assert metrics.snapshot()["counters"]["svc.orphans_reaped"] == 1
        # identity file consumed: a second pass finds nothing
        assert reap_orphans(store, [job.id]) == []

    def test_dead_pid_is_not_reaped(self, tmp_path, scoped_metrics):
        store = JobStore(str(tmp_path))
        job = store.submit("default", TINY_SPEC)
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_orphan_main,
                           args=(store.job_dir(job.id),), daemon=True)
        proc.start()
        deadline = time.monotonic() + 10
        while (read_worker_identity(store.job_dir(job.id)) is None
               and time.monotonic() < deadline):
            time.sleep(0.02)
        proc.terminate()
        proc.join(timeout=10)
        assert reap_orphans(store, [job.id]) == []

    def test_recycled_pid_is_not_killed(self, tmp_path, scoped_metrics):
        """A live pid whose start time mismatches is someone else."""
        store = JobStore(str(tmp_path))
        job = store.submit("default", TINY_SPEC)
        job_dir = store.job_dir(job.id)
        # forge an identity naming *this* process but with wrong ticks,
        # as if our pid had been recycled from a dead worker
        with open(os.path.join(job_dir, "worker.json"), "w",
                  encoding="utf-8") as fh:
            json.dump({"pid": os.getpid(),
                       "start_ticks": 1, "ts": 0.0}, fh)
        assert reap_orphans(store, [job.id]) == []
        assert pid_alive(os.getpid())  # we were not shot

    def test_unverifiable_identity_is_left_alone(self, tmp_path,
                                                 scoped_metrics):
        store = JobStore(str(tmp_path))
        job = store.submit("default", TINY_SPEC)
        job_dir = store.job_dir(job.id)
        with open(os.path.join(job_dir, "worker.json"), "w",
                  encoding="utf-8") as fh:
            json.dump({"pid": os.getpid(), "start_ticks": None}, fh)
        assert reap_orphans(store, [job.id]) == []
        assert pid_alive(os.getpid())

    def test_missing_identity_file_is_skipped(self, tmp_path,
                                              scoped_metrics):
        store = JobStore(str(tmp_path))
        job = store.submit("default", TINY_SPEC)
        assert reap_orphans(store, [job.id]) == []


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"poison_threshold": 0},
        {"walltime_s": -1.0},
        {"max_rss_mb": -1.0},
        {"kill_grace_s": -0.1},
    ])
    def test_rejects_bad_policy(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionPolicy(**kwargs)
