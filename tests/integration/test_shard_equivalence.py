"""Byte-identity of sharded analysis against the sequential engines.

The acceptance bar for the time-sliced parallel path is the same as the
array engine's: ``pickle.dumps`` equality of the merged ``dump_state``
against a sequential run — pattern keys, bins within keys, cold rids,
footprints, and clock, *including dict insertion order*.  Exercised on
the paper's two headline codes plus CG (irregular index vectors), across
shard counts that place boundaries mid-scope, mid-chunk, and inside
run-compressed affine regions, and through every integration surface:
session, cache, sweep driver, and CLI.
"""

import pickle

import pytest

from repro.apps.gtc import GTCParams, build_gtc
from repro.apps.kernels import irregular_gather, stream_triad
from repro.apps.spcg import build_cg
from repro.apps.sweep3d import SweepParams, build_original
from repro.core import ReuseAnalyzer
from repro.core.shard import (
    analyze_sharded, analyze_trace_sharded, record_trace,
)
from repro.lang import BatchExecutor
from repro.model import MachineConfig

CFG = MachineConfig.scaled_itanium2()
GRANS = CFG.granularities()

BUILDERS = {
    "sweep3d": lambda: build_original(SweepParams(n=6, mm=4, nm=2,
                                                  noct=1)),
    "gtc": lambda: build_gtc(None, GTCParams(mpsi=4, mtheta=6, micell=2,
                                             mzeta=2, timesteps=1)),
    "cg": lambda: build_cg(grid=10, iterations=2),
}


@pytest.fixture(scope="module", params=sorted(BUILDERS),
                ids=sorted(BUILDERS))
def workload(request):
    """(recorded trace, pickled sequential reference state) per app."""
    build = BUILDERS[request.param]
    analyzer = ReuseAnalyzer(GRANS, engine="numpy")
    stats = BatchExecutor(build(), analyzer).run()
    trace, rec_stats = record_trace(build())
    assert vars(rec_stats) == vars(stats)
    return trace, pickle.dumps(analyzer.dump_state())


@pytest.mark.parametrize("k", [1, 2, 3, 7])
def test_sharded_byte_identical(workload, k):
    trace, ref = workload
    state = analyze_trace_sharded(trace, GRANS, k)
    assert pickle.dumps(state) == ref


def _sequential_ref(build):
    analyzer = ReuseAnalyzer(GRANS, engine="numpy")
    BatchExecutor(build(), analyzer).run()
    return pickle.dumps(analyzer.dump_state())


def test_boundaries_inside_run_compressed_regions():
    # The triad is one long affine stream: with 7 shards every cut lands
    # mid-row inside regions the numpy engine run-compresses, forcing the
    # partial-row / whole-rows / partial-row split and merge.
    build = lambda: stream_triad(257, 3)
    trace, _ = record_trace(build())
    state = analyze_trace_sharded(trace, GRANS, 7)
    assert pickle.dumps(state) == _sequential_ref(build)


def test_irregular_gather_sharded():
    build = lambda: irregular_gather(512, 2048)
    state, _stats = analyze_sharded(build(), 5, granularities=GRANS)
    assert pickle.dumps(state) == _sequential_ref(build)


def test_more_shards_than_accesses():
    build = lambda: stream_triad(4, 1)
    state, stats = analyze_sharded(build(), 10 ** 4, granularities=GRANS)
    assert pickle.dumps(state) == _sequential_ref(build)
    assert state["clock"] == stats.accesses


def test_scalar_executor_recording():
    # batch=False records through the scalar Executor (per-access calls,
    # coalesced by the recorder) — same merged bytes.
    build = lambda: build_original(SweepParams(n=5, mm=3, nm=2, noct=1))
    state, _ = analyze_sharded(build(), 3, granularities=GRANS,
                               batch=False)
    assert pickle.dumps(state) == _sequential_ref(build)


class TestSpilledEquivalence:
    """The stored-trace path meets the same byte-identity bar.

    Traces are force-spilled with a 1 KB buffer so every workload is
    written across many flushes and analyzed off the mmap, never from
    the recorder's memory.
    """

    @pytest.mark.parametrize("app", sorted(BUILDERS))
    @pytest.mark.parametrize("k", [2, 5])
    def test_forced_spill_byte_identical(self, app, k, tmp_path):
        build = BUILDERS[app]
        stored, _ = record_trace(build(), spill=str(tmp_path / "t"),
                                 spill_mb=0.001)
        state = analyze_trace_sharded(stored, GRANS, k)
        assert pickle.dumps(state) == _sequential_ref(build)

    def test_spilled_boundaries_inside_affine_rows(self, tmp_path):
        # 7 shards over the triad put every cut mid-affine-row; on the
        # stored path the partial rows materialize straight off the mmap
        build = lambda: stream_triad(257, 3)
        stored, _ = record_trace(build(), spill=str(tmp_path / "t"),
                                 spill_mb=0.001)
        state = analyze_trace_sharded(stored, GRANS, 7)
        assert pickle.dumps(state) == _sequential_ref(build)

    def test_spilled_boundaries_inside_run_regions(self, tmp_path):
        # gather batches are run-compressed periodic regions; cuts land
        # mid-region and the period must drop on the partial pieces
        build = lambda: irregular_gather(512, 2048)
        stored, _ = record_trace(build(), spill=str(tmp_path / "t"),
                                 spill_mb=0.001)
        state = analyze_trace_sharded(stored, GRANS, 5)
        assert pickle.dumps(state) == _sequential_ref(build)


class TestSessionIntegration:
    def test_session_sharded_matches_sequential(self, tmp_path):
        from repro.tools.cache import AnalysisCache
        from repro.tools.session import AnalysisSession
        build = BUILDERS["sweep3d"]
        seq = AnalysisSession(build(), engine="numpy")
        seq.run()
        ref = pickle.dumps(seq.analyzer.dump_state())

        cache = AnalysisCache(str(tmp_path))
        sh = AnalysisSession(build(), shards=3, cache=cache)
        sh.run()
        assert pickle.dumps(sh.analyzer.dump_state()) == ref
        assert sh.totals() == seq.totals()
        assert sh.manifest.shards == 3
        assert set(sh.manifest.phases) >= {"record", "shard_analyze",
                                           "shard_merge"}
        # merged entry is stored under the sequential key: a later
        # unsharded session of the same engine hits it
        seq2 = AnalysisSession(build(), cache=cache)
        seq2.run()
        assert seq2.from_cache
        assert pickle.dumps(seq2.analyzer.dump_state()) == ref

    def test_session_resumes_from_shard_partials(self, tmp_path):
        import os
        from repro.tools.cache import AnalysisCache
        from repro.tools.session import AnalysisSession
        build = BUILDERS["sweep3d"]
        cache = AnalysisCache(str(tmp_path))
        first = AnalysisSession(build(), shards=3, cache=cache)
        first.run()
        ref = pickle.dumps(first.analyzer.dump_state())
        # drop the merged entry; the three shard partials remain
        merged_key = cache.key_for(first.program, {}, first.config,
                                   "sa", "fenwick")
        os.unlink(cache._path(merged_key))
        hits_before = cache.hits
        again = AnalysisSession(build(), shards=3, cache=cache)
        again.run()
        assert not again.from_cache
        assert cache.hits == hits_before + 3
        assert pickle.dumps(again.analyzer.dump_state()) == ref

    def test_session_trace_store_matches_sequential(self, tmp_path):
        from repro.tools.cache import AnalysisCache
        from repro.tools.session import AnalysisSession
        build = BUILDERS["sweep3d"]
        ref = _sequential_ref(build)
        cache = AnalysisCache(str(tmp_path / "cache"))
        sh = AnalysisSession(build(), shards=3, cache=cache,
                             trace_store=str(tmp_path / "ts"),
                             spill_mb=0.01)
        sh.run()
        assert pickle.dumps(sh.analyzer.dump_state()) == ref
        # the store landed on disk, digest-named
        import os
        assert os.listdir(str(tmp_path / "ts"))
        # merged entry still lives under the sequential key
        seq = AnalysisSession(build(), cache=cache)
        seq.run()
        assert seq.from_cache
        assert pickle.dumps(seq.analyzer.dump_state()) == ref

    def test_trace_store_without_sharding(self, tmp_path):
        from repro.tools.session import AnalysisSession
        build = BUILDERS["sweep3d"]
        session = AnalysisSession(build(), trace_store=str(tmp_path),
                                  spill_mb=0.01)
        session.run()
        assert pickle.dumps(session.analyzer.dump_state()) == \
            _sequential_ref(build)

    def test_trace_store_rejects_simulation(self):
        from repro.tools.session import AnalysisSession
        with pytest.raises(ValueError):
            AnalysisSession(BUILDERS["sweep3d"](), simulate=True,
                            trace_store="/tmp/nope")

    def test_session_rejects_sharded_simulation(self):
        from repro.tools.session import AnalysisSession
        with pytest.raises(ValueError):
            AnalysisSession(BUILDERS["sweep3d"](), shards=2,
                            simulate=True)
        with pytest.raises(ValueError):
            AnalysisSession(BUILDERS["sweep3d"](), shards=0)


class TestSweepIntegration:
    def test_sharded_task_matches_plain(self, tmp_path):
        from repro.tools.sweep import SweepTask, run_sweep
        params = SweepParams(n=6, mm=4, nm=2, noct=1)
        tasks = [
            SweepTask(key="plain", builder=build_original, args=(params,),
                      cache_dir=str(tmp_path)),
            SweepTask(key="sharded", builder=build_original,
                      args=(params,), shards=3,
                      cache_dir=str(tmp_path)),
        ]
        plain, sharded = run_sweep(tasks, jobs=1)
        assert plain.error is None and sharded.error is None
        assert pickle.dumps(sharded.state) == pickle.dumps(plain.state)
        assert sharded.totals == plain.totals
        assert sharded.shards == 3 and plain.shards == 1
        assert sharded.stats.accesses == plain.stats.accesses
        # sharded units + merged write-through populated the cache:
        # the pooled re-run is pure cache hits, same bytes
        again = run_sweep(tasks, jobs=2)
        assert all(out.from_cache for out in again)
        assert pickle.dumps(again[1].state) == pickle.dumps(plain.state)

    def test_trace_dir_task_matches_plain(self, tmp_path):
        import os
        from repro.tools.sweep import SweepTask, run_sweep
        params = SweepParams(n=6, mm=4, nm=2, noct=1)
        tasks = [
            SweepTask(key="plain", builder=build_original, args=(params,),
                      cache_dir=str(tmp_path / "cache")),
            SweepTask(key="spilled", builder=build_original,
                      args=(params,), shards=3,
                      cache_dir=str(tmp_path / "cache"),
                      trace_dir=str(tmp_path / "ts"), spill_mb=0.01),
        ]
        plain, spilled = run_sweep(tasks, jobs=1)
        assert plain.error is None and spilled.error is None
        assert pickle.dumps(spilled.state) == pickle.dumps(plain.state)
        assert spilled.stats.accesses == plain.stats.accesses
        # the parent recorded once: exactly one digest-named store
        assert len(os.listdir(str(tmp_path / "ts"))) == 1
        # shard partials were cached under the trace digest: a pooled
        # re-run is pure cache hits, same bytes
        again = run_sweep(tasks, jobs=2)
        assert all(out.from_cache for out in again)
        assert pickle.dumps(again[1].state) == pickle.dumps(plain.state)

    def test_pool_expansion_without_cache(self):
        from repro.tools.sweep import SweepTask, run_sweep
        params = SweepParams(n=6, mm=4, nm=2, noct=1)
        ref = _sequential_ref(lambda: build_original(params))
        (out,) = run_sweep([SweepTask(key="s", builder=build_original,
                                      args=(params,), shards=4)], jobs=2)
        assert out.error is None
        assert pickle.dumps(out.state) == ref

    def test_measure_mode_ignores_shards(self, caplog):
        from repro.apps.sweep3d import build_variant
        from repro.tools.sweep import SweepTask, run_sweep
        params = SweepParams(n=5, mm=3, nm=2, noct=1)
        task = SweepTask(key="orig", builder=build_variant,
                         args=("original", params), mode="measure",
                         shards=2, measure_kwargs={"name": "orig"})
        with caplog.at_level("WARNING", logger="repro.tools.sweep"):
            (out,) = run_sweep([task], jobs=1)
        assert out.error is None
        assert out.shards == 1
        assert "ignored in measure mode" in caplog.text

    def test_manifest_rows_carry_engine_and_shards(self):
        from repro.tools.sweep import (
            SweepTask, build_sweep_manifest, run_sweep,
        )
        params = SweepParams(n=5, mm=3, nm=2, noct=1)
        outs = run_sweep([SweepTask(key="s", builder=build_original,
                                    args=(params,), shards=2,
                                    engine="numpy")])
        manifest = build_sweep_manifest(outs)
        (row,) = manifest["task_summaries"]
        assert row["engine"] == "numpy"
        assert row["shards"] == 2

    def test_failing_builder_in_sharded_task(self):
        from repro.tools.sweep import SweepTask, run_sweep
        (out,) = run_sweep([SweepTask(key="boom", builder=_exploding,
                                      shards=3)], jobs=1)
        assert out.failed
        assert "RuntimeError" in out.error


def _exploding():
    raise RuntimeError("builder exploded")


class TestCLIIntegration:
    def test_analyze_with_shards(self, capsys):
        from repro.cli import main
        assert main(["analyze", "fig1", "--shards", "3",
                     "--no-cache"]) == 0
        out = capsys.readouterr()
        assert "3 time shards" in out.err
        assert "predicted misses" in out.out

    def test_analyze_with_spill(self, capsys, tmp_path, monkeypatch):
        import tempfile
        from repro.cli import main
        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        assert main(["analyze", "fig1", "--shards", "3",
                     "--spill-mb", "1", "--no-cache"]) == 0
        out = capsys.readouterr()
        assert "3 time shards from a spilled trace" in out.err
        assert "predicted misses" in out.out

    def test_sharded_manifest_renders(self, obs_on, tmp_path):
        from repro.obs.manifest import RunManifest
        from repro.tools.session import AnalysisSession
        session = AnalysisSession(BUILDERS["sweep3d"](), shards=2)
        session.run()
        path = session.manifest.save(str(tmp_path / "m.json"))
        text = RunManifest.load(path).render()
        assert "sharded: 2 time shards" in text
        assert "boundary accesses resolved at merge" in text
        assert "shard.boundary_unresolved" in text
