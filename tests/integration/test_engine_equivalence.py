"""End-to-end engine equivalence on the real application kernels.

The array engine's acceptance bar is byte-identity, not statistical
agreement: for every application in the suite the ``numpy`` analyzer must
produce exactly the pattern databases, cold counts, footprints, and clock
that the scalar ``fenwick`` engine does — through the full batched
pipeline, not just synthetic traces.  Sweep3D and GTC are the paper's two
headline codes; CG adds an irregular (index-vector) access pattern.
"""

import pytest

from repro.apps.gtc import GTCParams, build_gtc
from repro.apps.spcg import build_cg
from repro.apps.sweep3d import SweepParams, build_original
from repro.core import ReuseAnalyzer
from repro.lang import BatchExecutor
from repro.model import MachineConfig

CFG = MachineConfig.scaled_itanium2()

BUILDERS = [
    ("sweep3d", lambda: build_original(SweepParams(n=6, mm=4, nm=2,
                                                   noct=1))),
    ("gtc", lambda: build_gtc(None, GTCParams(mpsi=4, mtheta=6, micell=2,
                                              mzeta=2, timesteps=1))),
    ("cg", lambda: build_cg(grid=10, iterations=2)),
]


def _run(build, engine, flush_threshold=None):
    analyzer = ReuseAnalyzer(CFG.granularities(), engine=engine)
    if flush_threshold is not None:
        analyzer._np_state.flush_threshold = flush_threshold
    stats = BatchExecutor(build(), analyzer).run()
    return analyzer.dump_state(), vars(stats)


@pytest.mark.parametrize("name,build", BUILDERS,
                         ids=[n for n, _b in BUILDERS])
def test_numpy_byte_identical_to_fenwick(name, build):
    fw_state, fw_stats = _run(build, "fenwick")
    np_state, np_stats = _run(build, "numpy")
    assert np_state == fw_state
    assert np_stats == fw_stats


def test_numpy_small_flush_windows_on_sweep3d():
    # Force many buffer flushes inside one run: windows end mid-loop and
    # mid-run, exercising the cross-buffer distance/carry stitching on a
    # real access stream rather than a synthetic one.
    build = BUILDERS[0][1]
    fw_state, _ = _run(build, "fenwick")
    np_state, _ = _run(build, "numpy", flush_threshold=997)
    assert np_state == fw_state
