"""End-to-end determinism: identical builds produce identical databases.

Everything in the pipeline is seeded or deterministic (LCG index tables,
splitmix treap priorities, insertion-ordered dicts), so two independent
builds and runs of the same configuration must agree bit for bit — the
property that makes every benchmark in this repository reproducible.
"""

import pytest

from repro.apps.gtc import GTCParams, build_gtc
from repro.apps.spcg import build_cg
from repro.apps.sweep3d import SweepParams, build_original
from repro.core import ReuseAnalyzer
from repro.lang import run_program
from repro.model import MachineConfig

CFG = MachineConfig.scaled_itanium2()

BUILDERS = [
    ("sweep3d", lambda: build_original(SweepParams(n=6, mm=4, nm=2,
                                                   noct=1))),
    ("gtc", lambda: build_gtc(None, GTCParams(mpsi=4, mtheta=6, micell=2,
                                              mzeta=2, timesteps=1))),
    ("cg", lambda: build_cg(grid=10, iterations=2)),
]


def _snapshot(build):
    analyzer = ReuseAnalyzer(CFG.granularities())
    run_program(build(), analyzer)
    return {
        g.name: (
            {k: dict(sorted(v.items()))
             for k, v in sorted(g.db.raw.items())},
            dict(sorted(g.db.cold.items())),
        )
        for g in analyzer.grans
    }


@pytest.mark.parametrize("name,build", BUILDERS,
                         ids=[n for n, _b in BUILDERS])
def test_two_runs_identical(name, build):
    assert _snapshot(build) == _snapshot(build)


def test_xml_export_deterministic():
    from repro.tools import AnalysisSession

    def export():
        session = AnalysisSession(build_cg(grid=8, iterations=1))
        session.run()
        return session.export_xml()

    assert export() == export()


def test_prediction_deterministic():
    from repro.tools import AnalysisSession

    def totals():
        session = AnalysisSession(
            build_original(SweepParams(n=6, mm=4, nm=2, noct=1)))
        session.run()
        return session.totals()

    assert totals() == totals()
