"""Integration tests: the paper's headline findings must reproduce in shape.

These run the full pipeline on reduced problem sizes (the benchmarks use
larger ones), asserting the qualitative claims of Section V:

* Fig 5: the ``idiag`` loop carries the majority of Sweep3D's cache misses;
  ``jkm`` carries the majority of its TLB misses.
* Table II: the src/flux/face loop nests dominate L2 misses, each mostly
  carried by ``idiag``.
* Fig 8: misses fall monotonically with the mi blocking factor; block 1
  behaves like the original; blk6+dimIC is best and is ~2.5x faster.
* Fig 9: the zion family accounts for the bulk of GTC's fragmentation
  misses.
* Fig 10: pushi and the time/RK loops carry large shares of L3 misses;
  the smooth loop nest is the top TLB carrier.
* Fig 11: each cumulative GTC transformation is monotone non-increasing in
  its target metric; the zion transpose is the single biggest step; pushi
  tiling cuts misses but not time.
"""

import pytest

from repro.apps.gtc import GTCParams, VARIANTS as GTC_VARIANTS, build_gtc
from repro.apps.harness import measure
from repro.apps.sweep3d import SweepParams, build_original, build_variant
from repro.tools import AnalysisSession

SWEEP = SweepParams(n=8, mm=6, nm=3, noct=2)
GTC = GTCParams(micell=6, timesteps=2)


@pytest.fixture(scope="module")
def sweep_session():
    session = AnalysisSession(build_original(SWEEP))
    session.run()
    return session


@pytest.fixture(scope="module")
def gtc_session():
    session = AnalysisSession(build_gtc(None, GTC))
    session.run()
    return session


class TestFig5CarriedMisses:
    def test_idiag_dominates_cache_misses(self, sweep_session):
        prog = sweep_session.program
        carried = sweep_session.carried
        idiag = prog.scope_named("idiag").sid
        for level in ("L2", "L3"):
            top_sid, _ = carried.top_scopes(level, 1)[0]
            assert top_sid == idiag, f"{level} top carrier != idiag"
            assert carried.fraction(level, idiag) > 0.4

    def test_jkm_dominates_tlb_misses(self, sweep_session):
        prog = sweep_session.program
        carried = sweep_session.carried
        jkm = prog.scope_named("jkm").sid
        top_sid, _ = carried.top_scopes("TLB", 1)[0]
        assert top_sid == jkm
        assert carried.fraction("TLB", jkm) > 0.5

    def test_iq_carries_some_misses(self, sweep_session):
        prog = sweep_session.program
        iq = prog.scope_named("iq").sid
        assert sweep_session.carried.fraction("L3", iq) > 0.01


class TestTable2:
    def test_src_flux_face_dominate_l2(self, sweep_session):
        from repro.tools.report import dest_breakdown
        rows = dest_breakdown(sweep_session.prediction, "L2", top_scopes=4)
        arrays = {arr for _sid, arr, _c in rows}
        assert {"src", "flux", "face"} <= arrays

    def test_idiag_is_dominant_carrier_per_row(self, sweep_session):
        from repro.tools.report import dest_breakdown
        prog = sweep_session.program
        idiag = prog.scope_named("idiag").sid
        rows = dest_breakdown(sweep_session.prediction, "L2", top_scopes=3)
        for _sid, _array, carries in rows:
            top_carry = max(carries, key=carries.get)
            assert top_carry == idiag


class TestFig8Blocking:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for name in ("original", "block1", "block2", "block6",
                     "block6+dimic"):
            out[name] = measure(build_variant(name, SWEEP), name=name)
        return out

    def test_block1_matches_original(self, results):
        # Cache behaviour is near-identical (paper: "identical"); the TLB
        # differs somewhat more because block-1 sweeps 2D diagonals.
        for level in ("L2", "L3"):
            assert results["block1"].misses[level] == pytest.approx(
                results["original"].misses[level], rel=0.15)
        assert results["block1"].misses["TLB"] == pytest.approx(
            results["original"].misses["TLB"], rel=0.35)

    def test_misses_monotone_in_blocking(self, results):
        for level in ("L2", "L3"):
            seq = [results[n].misses[level]
                   for n in ("block1", "block2", "block6")]
            assert seq[0] > seq[1] > seq[2]

    def test_block6_integer_factor_reduction(self, results):
        assert results["original"].misses["L3"] > \
            2 * results["block6"].misses["L3"]

    def test_dimic_improves_tlb(self, results):
        assert results["block6+dimic"].misses["TLB"] < \
            0.9 * results["block6"].misses["TLB"]

    def test_speedup_at_least_double(self, results):
        speedup = (results["original"].total_cycles
                   / results["block6+dimic"].total_cycles)
        assert speedup > 2.0


class TestFig9Fragmentation:
    def test_zion_family_dominates(self, gtc_session):
        from repro.tools.report import fragmentation_misses
        per_array = fragmentation_misses(
            gtc_session.prediction, gtc_session.fragmentation, "L3")
        total = sum(per_array.values())
        zion_family = sum(v for k, v in per_array.items()
                          if k.startswith("zion") or k == "particle_array")
        assert zion_family / total > 0.75

    def test_zion_factor_high(self, gtc_session):
        factors = gtc_session.fragmentation.by_array()
        assert factors["zion"] > 0.5


class TestFig10Carriers:
    def test_pushi_and_main_loops_carry_l3(self, gtc_session):
        prog = gtc_session.program
        carried = gtc_session.carried
        pushi = prog.scope_named("pushi").sid
        rk = prog.scope_named("main_rk").sid
        ts = prog.scope_named("main_time").sid
        assert carried.fraction("L3", pushi) > 0.15
        assert (carried.fraction("L3", rk)
                + carried.fraction("L3", ts)) > 0.25

    def test_smooth_nest_tops_tlb(self, gtc_session):
        prog = gtc_session.program
        carried = gtc_session.carried
        top_sid, _ = carried.top_scopes("TLB", 1)[0]
        assert prog.scope(top_sid).routine == "smooth"

    def test_chargei_carries_l3(self, gtc_session):
        prog = gtc_session.program
        chargei = prog.scope_named("chargei").sid
        assert gtc_session.carried.fraction("L3", chargei) > 0.02


class TestFig11Transformations:
    @pytest.fixture(scope="class")
    def chain(self):
        out = []
        for variant in GTC_VARIANTS:
            fused = ("pushi", "gcmotion") if variant.pushi_tiled else ()
            out.append(measure(build_gtc(variant, GTC), name=variant.name,
                               fused_routines=fused))
        return out

    def test_misses_monotone_non_increasing(self, chain):
        for level in ("L2", "L3", "TLB"):
            seq = [r.misses[level] for r in chain]
            for a, b in zip(seq, seq[1:]):
                assert b <= a * 1.02, f"{level} regressed: {seq}"

    def test_zion_transpose_biggest_single_step(self, chain):
        drops = [chain[i].misses["L3"] - chain[i + 1].misses["L3"]
                 for i in range(len(chain) - 1)]
        assert drops[0] == max(drops)

    def test_spcpft_does_not_change_misses(self, chain):
        fusion, unroll = chain[2], chain[3]
        for level in ("L2", "L3", "TLB"):
            assert unroll.misses[level] == fusion.misses[level]

    def test_pushi_tiling_cuts_misses_not_time(self, chain):
        before, after = chain[-2], chain[-1]
        assert after.misses["L3"] < before.misses["L3"]
        assert after.misses["L2"] < before.misses["L2"]
        # ... but the I-cache overflow eats the win (paper Section V-B)
        assert after.total_cycles > 0.95 * before.total_cycles

    def test_overall_miss_factor_two(self, chain):
        assert chain[0].misses["L2"] > 2 * chain[-1].misses["L2"]
        assert chain[0].misses["L3"] > 2 * chain[-1].misses["L3"]

    def test_overall_speedup_about_1_5x(self, chain):
        speedup = chain[0].total_cycles / chain[-1].total_cycles
        assert speedup > 1.3
