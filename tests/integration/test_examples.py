"""The shipped examples must run clean end to end (fast subset).

The two full case-study walkthroughs (sweep3d_tuning, gtc_tuning) rerun
multi-variant measurements and are exercised by the benchmarks instead.
"""

import os
import subprocess
import sys

import pytest

_EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "examples")

FAST_EXAMPLES = [
    ("quickstart.py", ["interchange", "carrying scope"]),
    ("fragmentation_analysis.py", ["f = 1 - c/s = 0.50", "reuse groups"]),
    ("transform_roundtrip.py", ["fewer", "[fragmentation]", "[fusion]"]),
    ("scaling_prediction.py", ["predicted L3 misses", "error"]),
    ("miss_curves.py", ["miss curve", "working-set knees", "<- L2"]),
]


@pytest.mark.parametrize("script,expected",
                         FAST_EXAMPLES, ids=[s for s, _e in FAST_EXAMPLES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES, script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle in result.stdout, (
            f"{script}: missing {needle!r} in output")
