"""Observability must observe, never steer.

Acceptance gate for the obs subsystem: with metrics, spans, and manifests
enabled, every analysis product — pattern databases, XML exports, rendered
reports — is byte-identical to a run with observability off.  Exercised on
the Sweep3D kernel, the workload the paper's headline figures use.
"""

from repro.apps.sweep3d import SweepParams, build_original
from repro.obs import metrics, trace
from repro.tools import AnalysisSession

PARAMS = SweepParams(n=6, mm=3, nm=2, noct=1)


def _run_session():
    session = AnalysisSession(build_original(PARAMS))
    session.run()
    return session


def _products(session):
    return {
        "state": session.analyzer.dump_state(),
        "xml": session.export_xml(),
        "totals": session.totals(),
        "carried": session.render_carried(n=6),
        "table2": session.render_table2("L2", top_scopes=5),
        "fragmentation": session.render_fragmentation("L3", n=6),
        "patterns": session.render_top_patterns("L2", n=10),
        "recommendations": session.render_recommendations("L2", top_n=6),
    }


class TestObsEquivalence:
    def test_sweep3d_products_byte_identical(self, obs_on):
        # obs OFF first (the fixture enabled it: flip around each run)
        metrics.set_enabled(False)
        off = _products(_run_session())
        metrics.set_enabled(True)
        on_session = _run_session()
        on = _products(on_session)
        assert on == off
        # and the observed run actually observed something
        counters = on_session.manifest.metrics["counters"]
        assert counters["analyzer.batch_events"] > 0
        assert on_session.manifest.phases["execute"] > 0

    def test_simulator_totals_identical(self, obs_on):
        metrics.set_enabled(False)
        s_off = AnalysisSession(build_original(PARAMS), simulate=True)
        s_off.run()
        metrics.set_enabled(True)
        s_on = AnalysisSession(build_original(PARAMS), simulate=True)
        s_on.run()
        assert s_on.sim.totals() == s_off.sim.totals()
        assert metrics.snapshot()["counters"]["sim.batch_events"] > 0

    def test_tracer_collects_session_spans(self, obs_on):
        _run_session()
        names = [sp.name for sp in trace.tracer().spans]
        assert "execute" in names
        assert "session.run" in names

    def test_scalar_path_identical_with_obs_on(self, obs_on):
        metrics.set_enabled(False)
        off = AnalysisSession(build_original(PARAMS), batch=False)
        off.run()
        metrics.set_enabled(True)
        on = AnalysisSession(build_original(PARAMS), batch=False)
        on.run()
        assert on.analyzer.dump_state() == off.analyzer.dump_state()
