#!/usr/bin/env python
"""Cross-input prediction: train on small runs, predict bigger ones.

The paper (via its reference [14]) models how each reuse pattern's
histogram scales with problem size, so one set of cheap training runs
predicts cache behaviour for inputs never measured.  This example trains
the scaling model on small STREAM-triad runs and Sweep3D meshes, then
checks the predictions against direct measurement.

Run:  python examples/scaling_prediction.py
"""

from repro.apps.kernels import stream_triad
from repro.apps.sweep3d import SweepParams, build_original
from repro.core import ReuseAnalyzer
from repro.lang import run_program
from repro.model import MachineConfig, ScalingModel

CFG = MachineConfig.scaled_itanium2()


def _db(prog):
    analyzer = ReuseAnalyzer(CFG.granularities())
    run_program(prog, analyzer)
    return analyzer


def triad_demo() -> None:
    print("== STREAM triad: train on n = 256..2048, predict n = 8192 ==")
    train_sizes = [256, 512, 1024, 2048]
    dbs = [_db(stream_triad(n=n, timesteps=2)).db("line")
           for n in train_sizes]
    model = ScalingModel.fit(train_sizes, dbs)

    target = 8192
    level = CFG.level("L3")
    predicted = model.predict_misses(target, level)
    actual_analyzer = _db(stream_triad(n=target, timesteps=2))
    from repro.model import predict
    actual = predict(actual_analyzer, CFG,
                     stream_triad(n=target, timesteps=2)).levels["L3"].total
    print(f"  predicted L3 misses at n={target}: {predicted:8.0f}")
    print(f"  measured  L3 misses at n={target}: {actual:8.0f}")
    print(f"  error: {100 * (predicted - actual) / actual:+.1f}%")
    print()


def sweep_demo() -> None:
    print("== Sweep3D: train on meshes 4..8, predict mesh 12 ==")
    train = [4, 6, 8]
    dbs = []
    for n in train:
        params = SweepParams(n=n, mm=4, nm=2, noct=1)
        dbs.append(_db(build_original(params)).db("line"))
    model = ScalingModel.fit(train, dbs)

    target = 12
    level = CFG.level("L3")
    predicted = model.predict_misses(target, level)
    params = SweepParams(n=target, mm=4, nm=2, noct=1)
    analyzer = _db(build_original(params))
    from repro.model import predict
    actual = predict(analyzer, CFG,
                     build_original(params)).levels["L3"].total
    print(f"  predicted L3 misses at mesh {target}^3: {predicted:8.0f}")
    print(f"  measured  L3 misses at mesh {target}^3: {actual:8.0f}")
    ratio = predicted / actual if actual else float("nan")
    print(f"  ratio: {ratio:.2f} (regular codes extrapolate well; "
          f"wavefront irregularity costs accuracy)")


if __name__ == "__main__":
    triad_demo()
    sweep_demo()
