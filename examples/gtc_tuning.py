#!/usr/bin/env python
"""The GTC tuning story (paper Section V-B), end to end.

1. Analyze the original particle-in-cell code: the zion arrays-of-records
   dominate fragmentation misses (Fig 9); pushi and the time/RK loops carry
   the L3 misses, a smooth loop nest carries the TLB misses (Fig 10).
2. Apply the six cumulative transformations and measure each (Fig 11),
   including the pushi anomaly: tiling+fusion cuts misses but the fused
   loop overflows the small I-cache, so the time does not improve.

Run:  python examples/gtc_tuning.py
"""

from repro.apps.gtc import GTCParams, VARIANTS, build_gtc
from repro.apps.harness import measure
from repro.tools import AnalysisSession

PARAMS = GTCParams(micell=8, timesteps=2)


def analyze_original() -> None:
    print("=" * 70)
    print("STEP 1 — analyze the original code")
    print("=" * 70)
    session = AnalysisSession(build_gtc(None, PARAMS))
    session.run()
    print(session.render_fragmentation("L3", n=6))
    print()
    print(session.render_carried(["L3", "TLB"], n=6))
    print(session.render_recommendations("L3", top_n=5))
    print()


def measure_chain() -> None:
    print("=" * 70)
    print("STEP 2 — apply transformations cumulatively (Fig 11)")
    print("=" * 70)
    unit = PARAMS.micell * PARAMS.timesteps
    print(f"{'variant':<24}{'L2/u':>9}{'L3/u':>9}{'TLB/u':>8}"
          f"{'cycles/u':>11}")
    print("-" * 61)
    first = None
    for variant in VARIANTS:
        fused = ("pushi", "gcmotion") if variant.pushi_tiled else ()
        result = measure(build_gtc(variant, PARAMS), name=variant.name,
                         fused_routines=fused)
        if first is None:
            first = result
        print(f"{variant.name:<24}"
              f"{result.misses['L2'] / unit:>9.0f}"
              f"{result.misses['L3'] / unit:>9.0f}"
              f"{result.misses['TLB'] / unit:>8.0f}"
              f"{result.total_cycles / unit:>11.0f}")
    print("-" * 61)
    print(f"misses: L2 {first.misses['L2'] / result.misses['L2']:.1f}x down, "
          f"L3 {first.misses['L3'] / result.misses['L3']:.1f}x down; "
          f"time {first.total_cycles / result.total_cycles:.2f}x faster "
          f"(paper: misses 2x+, time 1.5x)")


if __name__ == "__main__":
    analyze_original()
    measure_chain()
