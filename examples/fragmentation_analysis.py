#!/usr/bin/env python
"""Static fragmentation analysis walkthrough (paper Section III).

Reproduces the paper's Fig 2 worked example step by step, showing the
machinery the tool built: lowering to a register IR, recovering symbolic
first-location and stride formulas by use-def tracing, grouping related
references, splitting reuse groups, and computing hot footprints.

Run:  python examples/fragmentation_analysis.py
"""

from repro.apps.kernels import fig2_fragmentation
from repro.lang import run_program
from repro.static import (
    FragmentationAnalysis, StaticAnalysis, address_slice_of_ref,
)


def main() -> None:
    prog = fig2_fragmentation(n=100, m=40)
    stats = run_program(prog)
    static = StaticAnalysis(prog)

    print("Fig 2 kernel:")
    print("  DO J = 1, M")
    print("    DO I = 1, N, 4")
    print("      A(I+2,J) = A(I,J-1) + B(I+1,J) - B(I+3,J)")
    print("      A(I+3,J) = A(I+1,J-1) + B(I,J) - B(I+2,J)")
    print()

    print("-- symbolic formulas recovered from the lowered IR --")
    for ref in prog.refs[:4]:
        formula = static.formula(ref.rid)
        strides = {
            prog.scope(sid).name: info
            for sid, info in static.strides(ref.rid).items()
        }
        print(f"  {ref.access!r:<16} addr = {formula}")
        print(f"  {'':<16} strides: {strides}")
    slice_len = len(address_slice_of_ref(
        static.ir["main"], prog.refs[0].rid))
    print(f"  (use-def backward slice of the first reference: "
          f"{slice_len} IR instructions)")
    print()

    print("-- related references --")
    for group in static.related_groups():
        members = ", ".join(repr(prog.ref(r).access) for r in group.rids)
        print(f"  {group.object_name}: {members}")
    print()

    print("-- three-step fragmentation algorithm --")
    frag = FragmentationAnalysis(static, stats)
    for info in frag.infos:
        loop_name = prog.scope(info.loop_sid).name
        print(f"  array {info.group.object_name}:")
        print(f"    step 1: loop L = {loop_name}, stride s = {info.stride} B")
        groups = [[repr(prog.ref(r).access) for r in g]
                  for g in info.reuse_groups]
        print(f"    step 2: reuse groups = {groups}")
        print(f"    step 3: hot footprint c = {info.coverage} B "
              f"-> f = 1 - c/s = {info.factor:.2f}")
    print()
    print("paper: f(A) = 0.5 — split A into two arrays; f(B) = 0 — leave B.")


if __name__ == "__main__":
    main()
