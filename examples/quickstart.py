#!/usr/bin/env python
"""Quickstart: analyze a loop nest and get transformation advice.

Builds the paper's Fig 1(a) kernel (inner loop running over rows of
column-major arrays), runs the full analysis pipeline, and prints:

* which scopes carry the cache misses (the tool's central metric),
* the top reuse patterns, and
* the recommended transformation (loop interchange, as in the paper).

Run:  python examples/quickstart.py
"""

from repro import AnalysisSession
from repro.lang import MemoryLayout, Var, load, loop, program, routine, stmt, store


def build_fig1a(n: int = 96, m: int = 96):
    """DO I / DO J:  A(I,J) = A(I,J) + B(I,J)  — the wrong loop order."""
    lay = MemoryLayout()
    a = lay.array("A", n, m)          # column-major doubles, like Fortran
    b = lay.array("B", n, m)
    i, j = Var("i"), Var("j")
    nest = loop(
        "i", 1, n,
        loop("j", 1, m,
             stmt(load(a, i, j), load(b, i, j), store(a, i, j),
                  ops=1, loc="fig1.f:3"),
             name="J"),
        name="I",
    )
    return program("fig1a", lay, [routine("main", nest)])


def main() -> None:
    session = AnalysisSession(build_fig1a())
    session.run()

    print(session.config)
    print()
    print(f"predicted misses: "
          f"{ {k: round(v) for k, v in session.totals().items()} }")
    print()
    print(session.render_carried(["L2"], n=4))
    print(session.render_top_patterns("L2", n=4))
    print()
    print(session.render_recommendations("L2", top_n=3))
    print()
    print("The tool points at the outer I loop carrying the spatial reuse —")
    print("interchanging the loops (Fig 1b) moves that reuse inward.")


if __name__ == "__main__":
    main()
