#!/usr/bin/env python
"""Closing the loop: analyze → recommend → transform → re-measure.

The paper's workflow applied mechanically: the tool finds the problem, the
transformation package applies the recommended fix to the kernel AST, and
the harness verifies the misses actually went away.

Three round trips:
  1. Fig 1: outer-loop-carried spatial reuse  → loop interchange
  2. AoS particle array: fragmentation        → array splitting
  3. Two-phase stencil: cross-loop reuse      → loop fusion

Run:  python examples/transform_roundtrip.py
"""

from repro.apps.harness import measure
from repro.apps.kernels import fig1_interchange, stencil5
from repro.lang import MemoryLayout, Var, load, loop, program, routine, stmt, store
from repro.tools import AnalysisSession, FRAGMENTATION, FUSION, INTERCHANGE
from repro.transform import fuse, interchange, split_record_array


def _report(title, before, after, level):
    b, a = before.misses[level], after.misses[level]
    print(f"  {title}: {level} misses {b} -> {a}  "
          f"({b / max(a, 1):.1f}x fewer)")
    print()


def roundtrip_interchange() -> None:
    print("1) Fig 1 kernel — expect an [interchange] recommendation")
    session = AnalysisSession(fig1_interchange(64, 64))
    session.run()
    rec = next(r for r in session.recommendations("L2", 5)
               if r.scenario == INTERCHANGE)
    carrier = session.program.scope(rec.pattern.carry_sid).name
    print(f"  tool says: {rec}")
    fixed = interchange(fig1_interchange(64, 64), carrier)
    _report("after interchange", measure(fig1_interchange(64, 64)),
            measure(fixed), "L2")


def _aos_kernel(n=4096):
    lay = MemoryLayout()
    particles = lay.array("particles", n,
                          fields=("x", "y", "z", "vx", "vy", "vz", "w"))
    out = lay.array("out", n)
    m = Var("m")
    nest = loop("m", 1, n,
                stmt(load(particles, m, field="w"), store(out, m),
                     ops=1, loc="aos.f:3"),
                name="M")
    return program("aos", lay, [routine("main", nest)])


def roundtrip_split() -> None:
    print("2) AoS particle kernel — expect a [fragmentation] recommendation")
    session = AnalysisSession(_aos_kernel())
    session.run()
    rec = next(r for r in session.recommendations("L2", 5)
               if r.scenario == FRAGMENTATION)
    print(f"  tool says: {rec}")
    fixed = split_record_array(_aos_kernel(), rec.pattern.array)
    _report("after splitting", measure(_aos_kernel()), measure(fixed), "L2")


def roundtrip_fusion() -> None:
    print("3) Two-phase stencil — expect a [fusion] recommendation")
    session = AnalysisSession(stencil5(72, 1))
    session.run()
    rec = next(r for r in session.recommendations("L2", 8)
               if r.scenario == FUSION)
    src = session.program.scope(rec.pattern.src_sid)
    dest = session.program.scope(rec.pattern.dest_sid)
    print(f"  tool says: {rec}")
    # fuse the outer loops enclosing the source/destination scopes
    outer_src = session.program.scope(src.parent).name
    outer_dest = session.program.scope(dest.parent).name
    fixed = fuse(stencil5(72, 1), outer_src, outer_dest)
    _report("after fusion", measure(stencil5(72, 1)), measure(fixed), "L3")


if __name__ == "__main__":
    roundtrip_interchange()
    roundtrip_split()
    roundtrip_fusion()
