#!/usr/bin/env python
"""Miss curves: one measurement, every cache size (Mattson's trick).

Reuse-distance histograms answer "how many misses at capacity C?" for all
C at once — the property (the paper's reference [16]) that underlies the
whole methodology.  This example draws the curves for the STREAM triad and
the original Sweep3D, annotating the scaled machine's L2/L3 capacities and
reporting the detected working-set knees.

Run:  python examples/miss_curves.py
"""

from repro.apps.kernels import stream_triad
from repro.apps.sweep3d import SweepParams, build_original
from repro.core import ReuseAnalyzer
from repro.lang import run_program
from repro.model import MachineConfig
from repro.tools import render_curve, working_set_knees

CFG = MachineConfig.scaled_itanium2()
MARKS = {"L2": CFG.level("L2").capacity, "L3": CFG.level("L3").capacity}


def show(title, program) -> None:
    print(f"--- {title} ---")
    analyzer = ReuseAnalyzer({"line": 64})
    run_program(program, analyzer)
    db = analyzer.db("line")
    print(render_curve(db, annotate=MARKS))
    knees = ", ".join(f"{k // 1024}KB" if k >= 1024 else f"{k}B"
                      for k in working_set_knees(db))
    print(f"working-set knees: {knees}")
    print()


if __name__ == "__main__":
    show("STREAM triad (n=2048, 2 timesteps; working set 48KB)",
         stream_triad(2048, 2))
    show("Sweep3D original (mesh 8^3)",
         build_original(SweepParams(n=8, mm=6, nm=3, noct=2)))
