#!/usr/bin/env python
"""The Sweep3D tuning story (paper Section V-A), end to end.

1. Analyze the original wavefront kernel: the idiag loop carries ~3/4 of
   the cache misses (Fig 5); the src/flux/face loop nests dominate
   (Table II).
2. Apply the paper's transformation — tile the jkm loop on the angle
   coordinate mi, then interchange the moment dimension of src/flux — and
   measure every variant (Fig 8).

Run:  python examples/sweep3d_tuning.py
"""

from repro.apps.harness import measure
from repro.apps.sweep3d import SweepParams, VARIANTS, build_original, build_variant
from repro.tools import AnalysisSession

PARAMS = SweepParams(n=10, mm=6, nm=3, noct=2)


def analyze_original() -> None:
    print("=" * 70)
    print("STEP 1 — analyze the original code")
    print("=" * 70)
    session = AnalysisSession(build_original(PARAMS))
    session.run()
    print(session.render_carried(["L2", "L3", "TLB"], n=5))
    print(session.render_table2("L2", top_scopes=4))
    print()
    print(session.render_recommendations("L3", top_n=4))
    print()


def measure_variants() -> None:
    print("=" * 70)
    print("STEP 2 — transform and measure (Fig 8)")
    print("=" * 70)
    unit = PARAMS.cells * PARAMS.timesteps
    print(f"{'variant':<16}{'L2/cell':>10}{'L3/cell':>10}"
          f"{'TLB/cell':>10}{'cycles/cell':>13}")
    print("-" * 59)
    baseline = None
    for name in VARIANTS:
        result = measure(build_variant(name, PARAMS), name=name)
        if baseline is None:
            baseline = result
        print(f"{name:<16}"
              f"{result.misses['L2'] / unit:>10.1f}"
              f"{result.misses['L3'] / unit:>10.1f}"
              f"{result.misses['TLB'] / unit:>10.1f}"
              f"{result.total_cycles / unit:>13.1f}")
    speedup = baseline.total_cycles / result.total_cycles
    print("-" * 59)
    print(f"speedup original -> block6+dimIC: {speedup:.2f}x  (paper: 2.5x)")


if __name__ == "__main__":
    analyze_original()
    measure_variants()
