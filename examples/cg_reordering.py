#!/usr/bin/env python
"""Data reordering on a sparse CG solver (Table I, row 2).

A CSR matrix from a 5-point grid whose nodes were numbered badly makes the
SpMV gather ``x(colidx(nz))`` jump all over memory.  The tool classifies
the dominant reuse patterns as *irregular* and recommends data or
computation reordering; renumbering the unknowns in first-touch order
recovers much of the lost locality.

Run:  python examples/cg_reordering.py
"""

from repro.apps.harness import measure
from repro.apps.spcg import build_cg
from repro.tools import AnalysisSession, IRREGULAR
from repro.tools.report import irregular_total

GRID = 32


def analyze() -> None:
    print("== analyze the badly-ordered solver ==")
    session = AnalysisSession(build_cg(grid=GRID, ordering="shuffled"))
    session.run()
    total = session.prediction.levels["L2"].total
    irregular = irregular_total(session.prediction, session.static, "L2")
    print(f"L2 misses: {total:.0f}; from irregular reuse patterns: "
          f"{irregular:.0f} ({100 * irregular / total:.0f}%)")
    for rec in session.recommendations("L2", top_n=6):
        if rec.scenario == IRREGULAR:
            print(f"tool says: {rec}")
            break
    print()


def compare_orderings() -> None:
    print("== apply the reordering and measure ==")
    print(f"{'ordering':<14}{'L2 misses':>11}{'L3 misses':>11}{'cycles':>11}")
    print("-" * 47)
    for ordering in ("shuffled", "first-touch", "natural"):
        result = measure(build_cg(grid=GRID, ordering=ordering))
        print(f"{ordering:<14}{result.misses['L2']:>11}"
              f"{result.misses['L3']:>11}{result.total_cycles:>11.0f}")
    print()
    print("first-touch renumbering recovers much of the gap to the")
    print("well-ordered matrix — the 'data reordering' fix of Table I.")


if __name__ == "__main__":
    analyze()
    compare_orderings()
